#include "src/policy/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

namespace osdp {

namespace {

enum class TokKind {
  kIdent,
  kInt,
  kFloat,
  kString,
  kOp,      // = != < <= > >=
  kLParen,
  kRParen,
  kComma,
  kAnd,
  kOr,
  kNot,
  kIn,
  kTrue,
  kFalse,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '(') {
        out.push_back({TokKind::kLParen, "(", i++});
        continue;
      }
      if (c == ')') {
        out.push_back({TokKind::kRParen, ")", i++});
        continue;
      }
      if (c == ',') {
        out.push_back({TokKind::kComma, ",", i++});
        continue;
      }
      if (c == '\'' || c == '"') {
        const char quote = c;
        const size_t start = ++i;
        while (i < text_.size() && text_[i] != quote) ++i;
        if (i >= text_.size()) {
          return Status::InvalidArgument(
              "unterminated string literal at position " +
              std::to_string(start - 1));
        }
        out.push_back({TokKind::kString, text_.substr(start, i - start),
                       start - 1});
        ++i;  // closing quote
        continue;
      }
      if (c == '=' ) {
        out.push_back({TokKind::kOp, "=", i++});
        continue;
      }
      if (c == '!' && i + 1 < text_.size() && text_[i + 1] == '=') {
        out.push_back({TokKind::kOp, "!=", i});
        i += 2;
        continue;
      }
      if (c == '<' || c == '>') {
        if (i + 1 < text_.size() && text_[i + 1] == '=') {
          out.push_back({TokKind::kOp, std::string(1, c) + "=", i});
          i += 2;
        } else {
          out.push_back({TokKind::kOp, std::string(1, c), i++});
        }
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        const size_t start = i;
        ++i;
        bool is_float = false;
        while (i < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '.')) {
          is_float |= text_[i] == '.';
          ++i;
        }
        out.push_back({is_float ? TokKind::kFloat : TokKind::kInt,
                       text_.substr(start, i - start), start});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = i;
        while (i < text_.size() && IsIdentChar(text_[i])) ++i;
        std::string word = text_.substr(start, i - start);
        const std::string lower = Lower(word);
        TokKind kind = TokKind::kIdent;
        if (lower == "and") kind = TokKind::kAnd;
        else if (lower == "or") kind = TokKind::kOr;
        else if (lower == "not") kind = TokKind::kNot;
        else if (lower == "in") kind = TokKind::kIn;
        else if (lower == "true") kind = TokKind::kTrue;
        else if (lower == "false") kind = TokKind::kFalse;
        out.push_back({kind, std::move(word), start});
        continue;
      }
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at position " +
                                     std::to_string(i));
    }
    out.push_back({TokKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Predicate> Parse() {
    OSDP_ASSIGN_OR_RETURN(Predicate p, ParseOr());
    if (Peek().kind != TokKind::kEnd) {
      return Unexpected("end of expression");
    }
    return p;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Advance() { return tokens_[pos_++]; }
  bool Match(TokKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status Unexpected(const std::string& wanted) const {
    return Status::InvalidArgument(
        "expected " + wanted + " but found '" + Peek().text +
        "' at position " + std::to_string(Peek().pos));
  }

  Result<Predicate> ParseOr() {
    OSDP_ASSIGN_OR_RETURN(Predicate left, ParseAnd());
    while (Match(TokKind::kOr)) {
      OSDP_ASSIGN_OR_RETURN(Predicate right, ParseAnd());
      left = Predicate::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Predicate> ParseAnd() {
    OSDP_ASSIGN_OR_RETURN(Predicate left, ParseUnary());
    while (Match(TokKind::kAnd)) {
      OSDP_ASSIGN_OR_RETURN(Predicate right, ParseUnary());
      left = Predicate::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Predicate> ParseUnary() {
    if (Match(TokKind::kNot)) {
      OSDP_ASSIGN_OR_RETURN(Predicate inner, ParseUnary());
      return Predicate::Not(std::move(inner));
    }
    if (Match(TokKind::kLParen)) {
      OSDP_ASSIGN_OR_RETURN(Predicate inner, ParseOr());
      if (!Match(TokKind::kRParen)) return Unexpected("')'");
      return inner;
    }
    if (Match(TokKind::kTrue)) return Predicate::True();
    if (Match(TokKind::kFalse)) return Predicate::False();
    return ParseComparison();
  }

  Result<Value> ParseLiteral() {
    const Token tok = Advance();
    switch (tok.kind) {
      case TokKind::kInt:
        return Value(static_cast<int64_t>(std::strtoll(tok.text.c_str(),
                                                       nullptr, 10)));
      case TokKind::kFloat:
        return Value(std::strtod(tok.text.c_str(), nullptr));
      case TokKind::kString:
        return Value(tok.text);
      default:
        --pos_;
        return Unexpected("a literal");
    }
  }

  Result<Predicate> ParseComparison() {
    if (Peek().kind != TokKind::kIdent) return Unexpected("a column name");
    const std::string column = Advance().text;

    if (Match(TokKind::kIn)) {
      if (!Match(TokKind::kLParen)) return Unexpected("'(' after IN");
      std::vector<Value> literals;
      do {
        OSDP_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        literals.push_back(std::move(v));
      } while (Match(TokKind::kComma));
      if (!Match(TokKind::kRParen)) return Unexpected("')' after IN list");
      return Predicate::In(column, std::move(literals));
    }

    if (Peek().kind != TokKind::kOp) return Unexpected("a comparison operator");
    const std::string op = Advance().text;
    OSDP_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
    if (op == "=") return Predicate::Eq(column, std::move(literal));
    if (op == "!=") return Predicate::Ne(column, std::move(literal));
    if (op == "<") return Predicate::Lt(column, std::move(literal));
    if (op == "<=") return Predicate::Le(column, std::move(literal));
    if (op == ">") return Predicate::Gt(column, std::move(literal));
    if (op == ">=") return Predicate::Ge(column, std::move(literal));
    return Status::InvalidArgument("unknown operator '" + op + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Predicate> ParsePredicate(const std::string& text) {
  Lexer lexer(text);
  OSDP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<Policy> ParsePolicy(const std::string& text, std::string name) {
  OSDP_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate(text));
  if (name.empty()) name = "policy(" + text + ")";
  return Policy::SensitiveWhen(std::move(pred), std::move(name));
}

}  // namespace osdp
