// Figure 5: median (Rel50) and 95th-percentile (Rel95) per-bin relative
// error on the TIPPERS AP x hour histogram at ε = 1, policies P99..P25.
//
// Paper shape: OSDP algorithms improve most in the high-error bins (Rel95);
// OsdpLaplaceL1 outperforms DAWAz here because the policy is value-based
// (whole bins are sensitive or not), which the hybrid exploits directly.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/eval/table_printer.h"
#include "src/mech/dawa.h"
#include "src/mech/dawaz.h"
#include "src/mech/osdp_laplace.h"
#include "src/traj/ap_hour_histogram.h"

using namespace osdp;
using bench::PolicyGrid;
using bench::Reps;
using bench::Tippers;
using bench::TippersPolicies;

int main() {
  const TrajectoryDataset& sim = Tippers();
  ApHourOptions hopts;
  hopts.num_aps = sim.config.num_aps;
  hopts.slots_per_day = sim.config.slots_per_day;
  Histogram2D full2d = *ApHourDistinctUsers(sim.trajectories, hopts);
  const Histogram& x = full2d.flat();
  const double eps = 1.0;
  const int reps = Reps(5);

  std::printf("=== Figure 5: per-bin relative error percentiles (eps=1) ===\n\n");
  for (double percentile : {50.0, 95.0}) {
    std::printf("--- Rel%.0f ---\n", percentile);
    TextTable table({"policy", "OsdpLaplaceL1", "DAWAz", "DAWA"});
    for (size_t pi = 0; pi < 5; ++pi) {  // P99..P25, as in the figure
      const ApSetPolicy& ap_policy = TippersPolicies()[pi];
      std::vector<Trajectory> ns_trajs;
      for (const Trajectory& t : sim.trajectories) {
        if (!ap_policy.IsSensitive(t)) ns_trajs.push_back(t);
      }
      Histogram2D ns2d = *ApHourDistinctUsers(ns_trajs, hopts);
      const Histogram& xns = ns2d.flat();
      const std::vector<bool> bin_sens =
          ap_policy.ApHourBinSensitivity(static_cast<size_t>(hopts.hours));

      Rng rng(5000 + pi);
      double l1 = 0.0, dz = 0.0, dw = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        l1 += RelativeErrorPercentile(
            x, *OsdpLaplaceL1Hybrid(x, xns, bin_sens, eps, rng), percentile);
        dz += RelativeErrorPercentile(x, *Dawaz(x, xns, eps, rng), percentile);
        dw += RelativeErrorPercentile(x, Dawa(x, eps, rng)->estimate,
                                      percentile);
      }
      table.AddRow({PolicyGrid()[pi].label, TextTable::Fmt(l1 / reps, 3),
                    TextTable::Fmt(dz / reps, 3),
                    TextTable::Fmt(dw / reps, 3)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("shape check: OSDP improvements concentrate in Rel95 — the\n"
              "bins a DP algorithm gets most wrong (paper Fig. 5b).\n");
  return 0;
}
