// Benchmark of the parallel mechanism stage: seconds per interval-cost
// engine build (serial reference vs per-level sharded on the ThreadPool),
// per end-to-end partition solve (build + DP), and per hierarchical release
// (serial vs level-synchronous consistency passes), across domain sizes and
// a thread grid. Every parallel cell is cross-checked bit-identical against
// its serial reference — the full deviation table for the engine, cost and
// buckets for the solve, every leaf estimate for the hierarchical release —
// and the bench exits non-zero on any divergence, making it a determinism
// gate as well as a profile.
//
// It also answers ROADMAP's standing question — does the partition build
// dominate large-domain histogram batches? — by reporting the build's share
// of the end-to-end solve per domain.
//
// Knobs:
//   OSDP_BENCH_MAX_D    caps the domain grid (default 262144 = 2^18;
//                       set 4096 for a CI smoke run)
//   OSDP_BENCH_THREADS  comma-separated worker grid (default "1,2,4";
//                       0 = inline pool, distinct from the no-pool serial
//                       reference labeled threads=-1 in the JSON)
//   OSDP_BENCH_REPS     repetitions per cell (best-of; default scales with d)
//   OSDP_BENCH_JSON     output path (default BENCH_mech_parallel.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/env.h"
#include "src/common/random.h"
#include "src/eval/table_printer.h"
#include "src/hist/histogram.h"
#include "src/mech/dawa.h"
#include "src/mech/hierarchical.h"
#include "src/mech/interval_costs.h"
#include "src/runtime/thread_pool.h"

using namespace osdp;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Spiky integer-valued histogram (Adult-like), same generator as
// bench_dawa_partition so the serial columns line up across benches.
std::vector<double> SpikyData(size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(d);
  for (auto& v : x) {
    v = rng.NextBernoulli(0.1)
            ? static_cast<double>(rng.NextBounded(1 << 20))
            : 0.0;
  }
  return x;
}

struct Measurement {
  std::string op;  // engine_build | dawa_solve | hier_release
  size_t d;
  long long threads;  // -1 = serial reference (no pool)
  double sec;
};

std::vector<long long> ParseThreadGrid(const char* env) {
  const std::vector<long long> fallback = {1, 2, 4};
  if (env == nullptr) return fallback;
  std::vector<long long> out;
  const std::string s = env;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? s.npos : comma - pos);
    long long v = 0;
    if (!ParseInt64Strict(tok.c_str(), &v) || v < 0) return fallback;
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out.empty() ? fallback : out;
}

// Full-table comparison of two engines over every level and start position.
bool EnginesIdentical(const IntervalCostEngine& a, const IntervalCostEngine& b,
                      size_t d) {
  for (size_t len = 1; len <= d; len <<= 1) {
    for (size_t s = 0; s + len <= d; ++s) {
      if (a.Deviation(s, s + len) != b.Deviation(s, s + len)) return false;
    }
  }
  return a.Sum(0, d) == b.Sum(0, d);
}

bool SolutionsIdentical(const L1PartitionSolution& a,
                        const L1PartitionSolution& b) {
  if (a.cost != b.cost || a.buckets.size() != b.buckets.size()) return false;
  for (size_t i = 0; i < a.buckets.size(); ++i) {
    if (a.buckets[i].begin != b.buckets[i].begin ||
        a.buckets[i].end != b.buckets[i].end) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const char* max_d_env = std::getenv("OSDP_BENCH_MAX_D");
  long long max_d_parsed = 0;
  const size_t max_d = ParseInt64Strict(max_d_env, &max_d_parsed) &&
                               max_d_parsed > 0
                           ? static_cast<size_t>(max_d_parsed)
                           : 262144;
  const std::vector<long long> thread_grid =
      ParseThreadGrid(std::getenv("OSDP_BENCH_THREADS"));

  std::vector<size_t> domains;
  for (size_t d = 4096; d <= 262144; d *= 4) {
    if (d <= max_d) domains.push_back(d);
  }
  if (domains.empty()) domains.push_back(max_d);

  std::vector<std::unique_ptr<ThreadPool>> pools;
  for (long long t : thread_grid) {
    pools.push_back(std::make_unique<ThreadPool>(static_cast<size_t>(t)));
  }

  const double bucket_charge = 8.0;
  std::vector<Measurement> results;
  bool all_identical = true;

  std::printf("=== parallel mechanism stage: serial reference vs pool ===\n");
  std::printf("(domain grid capped at %zu; hardware_concurrency=%u)\n\n",
              max_d, std::thread::hardware_concurrency());

  for (size_t d : domains) {
    const std::vector<double> x = SpikyData(d, 0xDA3A + d);
    const int reps = bench::Reps(d <= 16384 ? 5 : (d <= 65536 ? 3 : 2));

    // --- interval-cost engine build: serial reference, then the grid. ---
    double serial_build = 1e300;
    std::unique_ptr<IntervalCostEngine> serial_engine;
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = NowSec();
      serial_engine = std::make_unique<IntervalCostEngine>(x);
      serial_build = std::min(serial_build, NowSec() - t0);
    }
    results.push_back({"engine_build", d, -1, serial_build});
    for (size_t p = 0; p < pools.size(); ++p) {
      double best = 1e300;
      std::unique_ptr<IntervalCostEngine> parallel_engine;
      for (int rep = 0; rep < reps; ++rep) {
        const double t0 = NowSec();
        parallel_engine = std::make_unique<IntervalCostEngine>(x, pools[p].get());
        best = std::min(best, NowSec() - t0);
      }
      results.push_back({"engine_build", d, thread_grid[p], best});
      if (!EnginesIdentical(*serial_engine, *parallel_engine, d)) {
        std::printf("MISMATCH: engine build diverged at d=%zu threads=%lld\n",
                    d, thread_grid[p]);
        all_identical = false;
      }
    }

    // --- end-to-end partition solve (build + DP). ---
    double serial_solve = 1e300;
    L1PartitionSolution serial_solution;
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = NowSec();
      serial_solution = SolveL1Partition(x, bucket_charge,
                                         DawaPositions::kEvery,
                                         DawaCostImpl::kEngine);
      serial_solve = std::min(serial_solve, NowSec() - t0);
    }
    results.push_back({"dawa_solve", d, -1, serial_solve});
    for (size_t p = 0; p < pools.size(); ++p) {
      double best = 1e300;
      L1PartitionSolution parallel_solution;
      for (int rep = 0; rep < reps; ++rep) {
        const double t0 = NowSec();
        parallel_solution =
            SolveL1Partition(x, bucket_charge, DawaPositions::kEvery,
                             DawaCostImpl::kEngine, pools[p].get());
        best = std::min(best, NowSec() - t0);
      }
      results.push_back({"dawa_solve", d, thread_grid[p], best});
      if (!SolutionsIdentical(serial_solution, parallel_solution)) {
        std::printf("MISMATCH: partition solve diverged at d=%zu threads=%lld\n",
                    d, thread_grid[p]);
        all_identical = false;
      }
    }

    // --- hierarchical release: same seed, so the noise draws are identical
    // and any difference is the consistency passes. ---
    Histogram hx{std::vector<double>(x)};
    HierarchicalOptions hopts;
    double serial_hier = 1e300;
    Histogram serial_estimate(d);
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(0x41E5 + d);
      const double t0 = NowSec();
      auto r = HierarchicalRelease(hx, 0.5, hopts, rng);
      serial_hier = std::min(serial_hier, NowSec() - t0);
      serial_estimate = std::move(r->estimate);
    }
    results.push_back({"hier_release", d, -1, serial_hier});
    for (size_t p = 0; p < pools.size(); ++p) {
      HierarchicalOptions popts;
      popts.pool = pools[p].get();
      double best = 1e300;
      Histogram parallel_estimate(d);
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng(0x41E5 + d);
        const double t0 = NowSec();
        auto r = HierarchicalRelease(hx, 0.5, popts, rng);
        best = std::min(best, NowSec() - t0);
        parallel_estimate = std::move(r->estimate);
      }
      results.push_back({"hier_release", d, thread_grid[p], best});
      bool identical = true;
      for (size_t i = 0; identical && i < d; ++i) {
        identical = serial_estimate[i] == parallel_estimate[i];
      }
      if (!identical) {
        std::printf("MISMATCH: hierarchical diverged at d=%zu threads=%lld\n",
                    d, thread_grid[p]);
        all_identical = false;
      }
    }

    // ROADMAP's profiling question: the engine build's share of the solve.
    std::printf("d=%-7zu build %.4fs  solve %.4fs  (build share %.0f%%)  "
                "hier %.4fs\n",
                d, serial_build, serial_solve,
                100.0 * serial_build / serial_solve, serial_hier);
  }

  // Summary table: serial vs best pooled time per op × d.
  auto find = [&](const char* op, size_t d, long long threads) -> double {
    for (const Measurement& m : results) {
      if (m.op == op && m.d == d && m.threads == threads) return m.sec;
    }
    return 0.0;
  };
  TextTable text({"op", "d", "serial s", "pooled s (best)", "speedup"});
  for (const char* op : {"engine_build", "dawa_solve", "hier_release"}) {
    for (size_t d : domains) {
      const double ts = find(op, d, -1);
      double tp = 1e300;
      for (long long t : thread_grid) {
        const double v = find(op, d, t);
        if (v > 0) tp = std::min(tp, v);
      }
      if (ts <= 0 || tp >= 1e300) continue;
      text.AddRow({op, std::to_string(d), TextTable::Fmt(ts, 4),
                   TextTable::Fmt(tp, 4), TextTable::Fmt(ts / tp, 1) + "x"});
    }
  }
  std::printf("\n%s\n", text.ToString().c_str());
  std::printf("cross-check: %s\n",
              all_identical
                  ? "all parallel cells bit-identical to serial"
                  : "MISMATCH DETECTED");

  // JSON artefact.
  const char* json_env = std::getenv("OSDP_BENCH_JSON");
  const std::string json_path =
      json_env ? json_env : "BENCH_mech_parallel.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"mech_parallel\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"bit_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"d\": %zu, \"threads\": %lld, "
                 "\"sec\": %.6g}%s\n",
                 m.op.c_str(), m.d, m.threads, m.sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu measurements)\n", json_path.c_str(),
              results.size());
  return all_identical ? 0 : 2;
}
