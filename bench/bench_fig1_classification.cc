// Figure 1: resident-vs-visitor classification error (1 - AUC) across the
// policy grid P99..P1 at ε ∈ {1.0, 0.01}.
//
// Series: All NS (non-private on all non-sensitive records, the PDP-style
// baseline vulnerable to exclusion attacks), OsdpRR (our OSDP release +
// non-private classifier), ObjDP (ε-DP objective perturbation on ALL data),
// Random (label-distribution baseline). Paper shape: OsdpRR ≈ All NS with
// error ~0.1 at high ρ and rising as ρ shrinks; ObjDP ≈ Random.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/table_printer.h"
#include "src/mech/osdp_rr.h"
#include "src/ml/evaluation.h"
#include "src/traj/features.h"

using namespace osdp;
using bench::PolicyGrid;
using bench::Tippers;
using bench::TippersPolicies;

namespace {

// Caps the CV workload so the bench stays in seconds: stratified subsample.
void Subsample(size_t cap, Rng& rng, Matrix* x, std::vector<int>* y) {
  if (x->size() <= cap) return;
  std::vector<size_t> idx(x->size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (size_t i = 0; i + 1 < idx.size(); ++i) {
    std::swap(idx[i], idx[i + rng.NextBounded(idx.size() - i)]);
  }
  Matrix nx;
  std::vector<int> ny;
  for (size_t i = 0; i < cap; ++i) {
    nx.push_back((*x)[idx[i]]);
    ny.push_back((*y)[idx[i]]);
  }
  *x = std::move(nx);
  *y = std::move(ny);
}

Result<double> CvError(const Matrix& x, const std::vector<int>& y,
                       const ScorerFactory& factory, Rng& rng) {
  OSDP_ASSIGN_OR_RETURN(CvResult cv, CrossValidateAuc(x, y, 5, factory, rng));
  return 1.0 - cv.mean_auc;
}

}  // namespace

int main() {
  const TrajectoryDataset& sim = Tippers();
  std::printf("=== Figure 1: classification error (1 - AUC) ===\n");
  std::printf("simulation: %zu trajectories, %zu users\n\n",
              sim.trajectories.size(), sim.users.size());

  FeatureOptions fopts;
  fopts.min_pattern_support = 30;
  LogisticRegressionOptions lr;
  lr.epochs = 120;
  const size_t kCvCap = 2500;

  for (double eps : {1.0, 0.01}) {
    std::printf("--- eps = %g ---\n", eps);
    TextTable table({"policy", "achieved ns", "All NS", "OsdpRR", "ObjDP",
                     "Random"});
    for (size_t pi = 0; pi < PolicyGrid().size(); ++pi) {
      const ApSetPolicy& ap_policy = TippersPolicies()[pi];
      auto policy = ap_policy.AsPolicy(PolicyGrid()[pi].label);
      Rng rng(1000 + pi + static_cast<uint64_t>(eps * 100));

      // All NS: every non-sensitive trajectory, truthfully.
      std::vector<Trajectory> all_ns;
      for (const Trajectory& t : sim.trajectories) {
        if (!ap_policy.IsSensitive(t)) all_ns.push_back(t);
      }
      // OsdpRR: a 1-e^{-ε} subsample of All NS.
      std::vector<Trajectory> rr;
      for (size_t i :
           OsdpRRSelectGeneric(sim.trajectories, policy, eps, rng)) {
        rr.push_back(sim.trajectories[i]);
      }

      auto run = [&](const std::vector<Trajectory>& trajs,
                     const ScorerFactory& factory) -> std::string {
        if (trajs.size() < 50) return "n/a";
        auto patterns = MineFrequentPatterns(trajs, fopts);
        auto feats = BuildClassificationFeatures(trajs, sim.users,
                                                 sim.config.num_aps, patterns);
        if (!feats.ok()) return "n/a";
        Matrix x = std::move(feats->x);
        std::vector<int> y = std::move(feats->y);
        Subsample(kCvCap, rng, &x, &y);
        size_t pos = 0;
        for (int label : y) pos += static_cast<size_t>(label);
        if (pos < 10 || y.size() - pos < 10) return "n/a";
        auto err = CvError(x, y, factory, rng);
        return err.ok() ? TextTable::Fmt(*err, 3) : "n/a";
      };

      // ObjDP and Random see ALL trajectories (they treat everything as
      // sensitive / ignore the data respectively).
      std::vector<Trajectory> all = sim.trajectories;

      table.AddRow({PolicyGrid()[pi].label,
                    TextTable::Fmt(
                        ap_policy.NonSensitiveFraction(sim.trajectories), 3),
                    run(all_ns, LogisticScorerFactory(lr)),
                    run(rr, LogisticScorerFactory(lr)),
                    run(all, ObjDpScorerFactory(eps, lr)),
                    run(all, RandomScorerFactory())});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("shape check: OsdpRR tracks All NS; ObjDP hovers near Random\n"
              "(~0.5); error rises as the non-sensitive fraction shrinks.\n");
  return 0;
}
