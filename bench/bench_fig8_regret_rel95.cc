// Figure 8: average regret for the 95th-percentile per-bin relative error
// (Rel95) at ε = 1, per policy generator, ρx >= 0.25.
//
// Paper shape: same ordering as Figure 7, with the OSDP advantage most
// pronounced — Rel95 captures exactly the bins DP algorithms get wrong.

#include <cstdio>

#include "bench/bench_dpbench_common.h"

using namespace osdp;
using namespace osdp::bench;

int main() {
  auto suite = StandardSuite();
  auto inputs = BuildInputs(/*min_rho=*/0.25);
  const int reps = Reps(3);
  const std::vector<std::string> shown = {"OsdpLaplaceL1", "DAWAz", "DAWA"};
  const double eps = 1.0;

  std::printf("=== Figure 8: average regret (Rel95) per policy, eps=1 ===\n\n");
  for (const char* policy : {"Close", "Far"}) {
    std::printf("--- policy: %s ---\n", policy);
    std::vector<std::pair<std::string, RegretFilter>> rows;
    RegretFilter all;
    all.policy = policy;
    rows.push_back({"Avg", all});
    for (double rho : RatioGrid()) {
      if (rho < 0.25) continue;
      RegretFilter f;
      f.policy = policy;
      f.rho = rho;
      rows.push_back({TextTable::Fmt(rho, 2), f});
    }
    PrintRegretTable(suite, inputs, rows, eps, ErrorMetric::kRel95, reps,
                     shown);
    std::printf("\n");
  }
  std::printf("shape check (paper Fig. 8): highest OSDP improvements in the\n"
              "high-error bins; under Far only DAWAz remains robust.\n");
  return 0;
}
