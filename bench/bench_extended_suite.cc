// Extended-suite regret: the Section 5.2 recipe applied beyond DAWA — AHPz
// and Hierarchicalz vs their DP bases and the paper's six algorithms.
// This is the "extensions of other algorithms" the paper lists as future
// work (end of Section 5.2), reproduced across the Figure 6 input grid.

#include <cstdio>

#include "bench/bench_dpbench_common.h"

using namespace osdp;
using namespace osdp::bench;

int main() {
  auto suite = ExtendedSuite();
  auto inputs = BuildInputs(/*min_rho=*/0.25);
  const int reps = Reps(3);
  const std::vector<std::string> shown = {"DAWA",  "DAWAz",        "AHP",
                                          "AHPz",  "Hierarchical", "Hierarchicalz",
                                          "OsdpLaplaceL1"};
  const double eps = 1.0;

  std::printf("=== extended suite: the recipe beyond DAWA (regret of MRE, "
              "eps=1, Close policy) ===\n\n");
  std::vector<std::pair<std::string, RegretFilter>> rows;
  {
    RegretFilter all;
    all.policy = "Close";
    rows.push_back({"Avg", all});
  }
  for (double rho : RatioGrid()) {
    if (rho < 0.25) continue;
    RegretFilter f;
    f.policy = "Close";
    f.rho = rho;
    rows.push_back({TextTable::Fmt(rho, 2), f});
  }
  PrintRegretTable(suite, inputs, rows, eps, ErrorMetric::kMRE, reps, shown);

  std::printf("\nreading: each <base>z dominates its DP base whenever the\n"
              "non-sensitive ratio is high — the recipe generalizes exactly\n"
              "as Section 5.2 predicts.\n");
  return 0;
}
