// Shared scaffolding for the experiment binaries: canonical simulation
// configs, policy grids, and environment-variable knobs so every bench
// regenerates its paper artefact with consistent inputs.

#ifndef OSDP_BENCH_BENCH_COMMON_H_
#define OSDP_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/traj/ap_policy.h"
#include "src/traj/building_sim.h"

namespace osdp {
namespace bench {

/// \brief Repetition count, overridable via OSDP_BENCH_REPS. Strict parse
/// (src/common/env.h): unset, unparsable ("7junk", "garbage"), or
/// non-positive values all yield `fallback` — a typo must not silently run a
/// different experiment.
inline int Reps(int fallback) {
  long long v = 0;
  if (!ParseInt64Strict(std::getenv("OSDP_BENCH_REPS"), &v)) return fallback;
  return (v > 0 && v <= INT_MAX) ? static_cast<int>(v) : fallback;
}

/// \brief A non-negative double knob (overhead gates, ratios) read from env
/// var `name` with the same strict-or-fallback contract as Reps.
inline double EnvGate(const char* name, double fallback) {
  double v = 0.0;
  if (!ParseDoubleStrict(std::getenv(name), &v)) return fallback;
  return v >= 0.0 ? v : fallback;
}

/// \brief Nearest-rank percentile of `vals` (copied and sorted internally):
/// the smallest element with rank >= ceil(p/100 · N). p=50 is the median of
/// odd-length inputs and the lower-middle of even ones; 0 on empty input.
/// The house latency-reporting idiom (bench_percentile in the liric
/// exemplar): exact, deterministic, no interpolation — a reported p99 is an
/// actual observed sample.
inline double Percentile(std::vector<double> vals, double p) {
  if (vals.empty()) return 0.0;
  std::sort(vals.begin(), vals.end());
  const double exact = p / 100.0 * static_cast<double>(vals.size());
  size_t rank = static_cast<size_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;  // ceil
  if (rank < 1) rank = 1;
  if (rank > vals.size()) rank = vals.size();
  return vals[rank - 1];
}

/// Median via Percentile(·, 50).
inline double Median(std::vector<double> vals) {
  return Percentile(std::move(vals), 50.0);
}

/// The standard latency trio + count, computed in one pass over a sample
/// vector. Feed it per-query durations (e.g. ServiceAnswer's
/// server_duration_micros) and report/record the fields directly.
struct LatencyStats {
  size_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

inline LatencyStats SummarizeLatencies(std::vector<double> vals) {
  LatencyStats s;
  s.count = vals.size();
  if (vals.empty()) return s;
  std::sort(vals.begin(), vals.end());
  auto at = [&](double p) {
    const double exact = p / 100.0 * static_cast<double>(vals.size());
    size_t rank = static_cast<size_t>(exact);
    if (static_cast<double>(rank) < exact) ++rank;
    if (rank < 1) rank = 1;
    if (rank > vals.size()) rank = vals.size();
    return vals[rank - 1];
  };
  s.p50 = at(50.0);
  s.p95 = at(95.0);
  s.p99 = at(99.0);
  s.max = vals.back();
  return s;
}

/// The canonical scaled-down TIPPERS simulation shared by the trajectory
/// benches (paper: 585K trajectories / 16K users over 9 months — we default
/// to a laptop-scale slice; OSDP_BENCH_USERS / OSDP_BENCH_DAYS rescale it).
inline const TrajectoryDataset& Tippers() {
  static const TrajectoryDataset kSim = [] {
    BuildingSimConfig cfg;
    const char* users = std::getenv("OSDP_BENCH_USERS");
    const char* days = std::getenv("OSDP_BENCH_DAYS");
    cfg.num_users = users ? std::atoi(users) : 600;
    cfg.num_days = days ? std::atoi(days) : 40;
    // Mirror the paper's class imbalance: residents are a small share of the
    // population (381 of 16K users; ~8% of daily trajectories).
    cfg.resident_fraction = 0.12;
    cfg.resident_attendance = 0.6;
    cfg.visitor_attendance = 0.25;
    cfg.seed = 20171216;  // arXiv submission date of the paper
    return *SimulateBuilding(cfg);
  }();
  return kSim;
}

/// The paper's policy labels P99...P1 with their target fractions.
struct PolicyPoint {
  const char* label;
  double target;
};

inline const std::vector<PolicyPoint>& PolicyGrid() {
  static const std::vector<PolicyPoint> kGrid = {
      {"P99", 0.99}, {"P90", 0.90}, {"P75", 0.75}, {"P50", 0.50},
      {"P25", 0.25}, {"P10", 0.10}, {"P1", 0.01}};
  return kGrid;
}

/// Calibrated AP policies for the shared simulation, built once.
inline const std::vector<ApSetPolicy>& TippersPolicies() {
  static const std::vector<ApSetPolicy> kPolicies = [] {
    std::vector<ApSetPolicy> out;
    for (const PolicyPoint& p : PolicyGrid()) {
      out.push_back(*CalibrateApPolicy(Tippers().trajectories,
                                       Tippers().config.num_aps, p.target));
    }
    return out;
  }();
  return kPolicies;
}

}  // namespace bench
}  // namespace osdp

#endif  // OSDP_BENCH_BENCH_COMMON_H_
