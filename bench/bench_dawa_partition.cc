// Micro-benchmark of the DAWA L1-partition engines: seconds per solve for
// the naive reference DP (per-interval O(len) cost scans — O(d²) total under
// kEvery) versus the precomputed interval-cost engine
// (src/mech/interval_costs.h — O(d log² d) build, O(1) per candidate), across
// domain sizes and both candidate-position modes. Every cell where both
// implementations run is also cross-checked for the bit-identical optimal
// cost and buckets the property tests pin down.
//
// Knobs:
//   OSDP_BENCH_MAX_D        caps the domain grid (default 262144 = 2^18;
//                           set 4096 for a CI smoke run)
//   OSDP_BENCH_MAX_NAIVE_D  caps the domains the naive kEvery path runs at
//                           (default 65536 = 2^16 — the acceptance point;
//                           beyond that the O(d²) scan takes minutes)
//   OSDP_BENCH_JSON         output path (default BENCH_dawa.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/eval/table_printer.h"
#include "src/mech/dawa.h"

using namespace osdp;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Spiky integer-valued histogram (Adult-like): sparse large counts over
// zeros. Integer values keep both cost implementations exactly comparable.
std::vector<double> SpikyData(size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(d);
  for (auto& v : x) {
    v = rng.NextBernoulli(0.1)
            ? static_cast<double>(rng.NextBounded(1 << 20))
            : 0.0;
  }
  return x;
}

struct Measurement {
  size_t d;
  std::string positions;  // every | half
  std::string impl;       // naive | engine
  double sec_per_solve;
  double cost;
  size_t buckets;
};

const char* PosName(DawaPositions p) {
  return p == DawaPositions::kEvery ? "every" : "half";
}

}  // namespace

int main() {
  const char* max_d_env = std::getenv("OSDP_BENCH_MAX_D");
  const size_t max_d =
      max_d_env ? static_cast<size_t>(std::atoll(max_d_env)) : 262144;
  const char* max_naive_env = std::getenv("OSDP_BENCH_MAX_NAIVE_D");
  const size_t max_naive_d =
      max_naive_env ? static_cast<size_t>(std::atoll(max_naive_env)) : 65536;

  std::vector<size_t> domains;
  for (size_t d = 256; d <= 262144; d *= 4) {
    if (d <= max_d) domains.push_back(d);
  }
  if (domains.empty()) domains.push_back(max_d);

  const double bucket_charge = 8.0;
  std::vector<Measurement> results;
  bool all_identical = true;

  std::printf("=== DAWA L1-partition: naive reference DP vs cost engine ===\n");
  std::printf("(domain grid capped at %zu; naive kEvery capped at %zu)\n\n",
              max_d, max_naive_d);

  for (size_t d : domains) {
    const std::vector<double> x = SpikyData(d, 0xDA3A + d);
    const int reps = d <= 4096 ? 5 : (d <= 65536 ? 2 : 1);

    for (DawaPositions pos :
         {DawaPositions::kEvery, DawaPositions::kHalfOverlap}) {
      L1PartitionSolution solutions[2];
      bool ran[2] = {false, false};
      const DawaCostImpl impls[2] = {DawaCostImpl::kNaive,
                                     DawaCostImpl::kEngine};
      const char* impl_names[2] = {"naive", "engine"};
      for (int i = 0; i < 2; ++i) {
        // The O(d²) naive kEvery scan takes minutes past 2^16; skip it there
        // (the cap is an env knob, so full sweeps remain one setting away).
        if (impls[i] == DawaCostImpl::kNaive &&
            pos == DawaPositions::kEvery && d > max_naive_d) {
          std::printf("d=%-7zu %-5s %-6s skipped (> OSDP_BENCH_MAX_NAIVE_D)\n",
                      d, PosName(pos), impl_names[i]);
          continue;
        }
        double best = 1e300;
        for (int rep = 0; rep < reps; ++rep) {
          const double t0 = NowSec();
          solutions[i] = SolveL1Partition(x, bucket_charge, pos, impls[i]);
          best = std::min(best, NowSec() - t0);
        }
        ran[i] = true;
        results.push_back({d, PosName(pos), impl_names[i], best,
                           solutions[i].cost, solutions[i].buckets.size()});
      }
      if (ran[0] && ran[1]) {
        bool identical = solutions[0].cost == solutions[1].cost &&
                         solutions[0].buckets.size() ==
                             solutions[1].buckets.size();
        for (size_t i = 0; identical && i < solutions[0].buckets.size(); ++i) {
          identical = solutions[0].buckets[i].begin ==
                          solutions[1].buckets[i].begin &&
                      solutions[0].buckets[i].end == solutions[1].buckets[i].end;
        }
        if (!identical) {
          std::printf("MISMATCH at d=%zu %s: naive and engine disagree!\n", d,
                      PosName(pos));
          all_identical = false;
        }
      }
    }
  }

  // Summary table with speedups.
  auto find = [&](size_t d, const char* pos, const char* impl) -> double {
    for (const Measurement& m : results) {
      if (m.d == d && m.positions == pos && m.impl == impl) {
        return m.sec_per_solve;
      }
    }
    return 0.0;
  };
  TextTable text({"d", "positions", "naive s", "engine s", "speedup"});
  for (size_t d : domains) {
    for (const char* pos : {"every", "half"}) {
      const double tn = find(d, pos, "naive");
      const double te = find(d, pos, "engine");
      text.AddRow({std::to_string(d), pos,
                   tn > 0 ? TextTable::Fmt(tn, 4) : "-",
                   te > 0 ? TextTable::Fmt(te, 4) : "-",
                   (tn > 0 && te > 0) ? TextTable::Fmt(tn / te, 1) + "x"
                                      : "-"});
    }
  }
  std::printf("\n%s\n", text.ToString().c_str());

  // Acceptance line: engine >= 10x at d = 2^16 under kEvery.
  const double tn16 = find(65536, "every", "naive");
  const double te16 = find(65536, "every", "engine");
  if (tn16 > 0 && te16 > 0) {
    std::printf("acceptance[d=65536, kEvery]: %.1fx (>= 10x required)\n",
                tn16 / te16);
  }
  std::printf("cross-check: %s\n",
              all_identical ? "all naive/engine cells bit-identical"
                            : "MISMATCH DETECTED");

  // JSON artefact.
  const char* json_env = std::getenv("OSDP_BENCH_JSON");
  const std::string json_path = json_env ? json_env : "BENCH_dawa.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"dawa_partition\",\n");
  std::fprintf(f, "  \"bit_identical\": %s,\n", all_identical ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"d\": %zu, \"positions\": \"%s\", \"impl\": \"%s\", "
                 "\"sec_per_solve\": %.6g, \"cost\": %.17g, \"buckets\": %zu}%s\n",
                 m.d, m.positions.c_str(), m.impl.c_str(), m.sec_per_solve,
                 m.cost, m.buckets, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu measurements)\n", json_path.c_str(),
              results.size());
  return all_identical ? 0 : 2;
}
