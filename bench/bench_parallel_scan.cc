// Scaling benchmark for the parallel execution runtime: rows/sec for the
// sharded scan paths and the concurrent QueryService versus the serial
// baselines, across thread counts.
//
//   ingest        table construction: boxed AppendRowUnchecked loop vs the
//                 columnar Table::FromColumns move-in path (1 thread each;
//                 measures the bulk-ingest satellite, not the pool).
//   mask          CompiledPredicate::EvalMask vs ParallelEvalMask
//   count         mask eval + AND with the policy mask + popcount, serial
//                 vs sharded combiners/ParallelCount
//   hist          ComputeHistogramMasked vs ParallelComputeHistogramMasked
//   service       a 16-query batch (12 counts + 4 histograms) through
//                 QueryService across 4 sessions, pool of N threads vs the
//                 inline pool
//
// Every parallel measurement is cross-checked bit-identical against its
// serial counterpart; any divergence exits non-zero (the ctest smoke run
// relies on this).
//
// Knobs: OSDP_BENCH_MAX_ROWS caps the row grid (default 10M; the CI smoke
// run uses 100000), OSDP_BENCH_THREADS is the comma-separated thread grid
// (default "1,2,4,8"), OSDP_BENCH_JSON the output path (default
// BENCH_parallel_scan.json). The JSON records hardware_concurrency so a
// flat curve on a starved machine reads as what it is.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/benchdata/table_gen.h"
#include "src/core/engine.h"
#include "src/data/compiled_predicate.h"
#include "src/data/predicate.h"
#include "src/data/row_mask.h"
#include "src/eval/table_printer.h"
#include "src/hist/histogram_query.h"
#include "src/policy/policy.h"
#include "src/runtime/parallel_scan.h"
#include "src/runtime/query_service.h"
#include "src/runtime/thread_pool.h"

using namespace osdp;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double TimeBest(int reps, const Fn& fn) {
  fn();  // warmup
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t0 = NowSec();
    fn();
    best = std::min(best, NowSec() - t0);
  }
  return best;
}

int RepsFor(size_t rows) {
  if (rows >= 10000000) return 2;
  if (rows >= 1000000) return 3;
  return 7;
}

struct Measurement {
  std::string op;
  size_t rows;
  size_t threads;  // 0 = serial baseline
  double sec_per_iter;
  double rows_per_sec;
};

std::vector<size_t> ParseThreads(const char* env) {
  std::vector<size_t> out;
  std::string s = env ? env : "1,2,4,8";
  size_t pos = 0;
  while (pos < s.size()) {
    out.push_back(static_cast<size_t>(std::atoll(s.c_str() + pos)));
    const size_t comma = s.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Predicate BenchPredicate() {
  // The 3-leaf "mixed3" shape of bench_predicate_pipeline, so the serial
  // baseline here lines up with BENCH_predicate_pipeline.json.
  return Predicate::And(Predicate::Or(Predicate::Eq("race", Value("C3")),
                                      Predicate::Eq("opt_in", Value(0))),
                        Predicate::Le("age", Value(40)));
}

Policy BenchPolicy() {
  return Policy::SensitiveWhen(
      Predicate::Or(Predicate::Eq("opt_in", Value(0)),
                    Predicate::Lt("age", Value(18))),
      "bench_policy");
}

// Builds the same census table through the boxed row-at-a-time path, for
// the ingest comparison. Mirrors the historical MakeCensusTable loop.
Table MakeCensusTableBoxed(const CensusTableOptions& opts) {
  Schema schema({{"age", ValueType::kInt64},
                 {"income", ValueType::kDouble},
                 {"race", ValueType::kString},
                 {"opt_in", ValueType::kInt64},
                 {"zip", ValueType::kInt64}});
  Table table(schema);
  Rng rng(opts.seed);
  std::vector<std::string> categories;
  for (size_t c = 0; c < std::max<size_t>(opts.num_categories, 1); ++c) {
    categories.push_back("C" + std::to_string(c));
  }
  Row row(5);
  for (size_t i = 0; i < opts.num_rows; ++i) {
    row[0] = Value(static_cast<int64_t>(rng.NextBounded(100)));
    row[1] = Value(
        std::min(2.0e4 / std::sqrt(rng.NextDoublePositive()), 1.0e7));
    row[2] = Value(categories[rng.NextBounded(categories.size())]);
    row[3] = Value(static_cast<int64_t>(
        rng.NextDouble() < opts.opt_out_fraction ? 0 : 1));
    row[4] = Value(static_cast<int64_t>(rng.NextBounded(10000)));
    table.AppendRowUnchecked(row);
  }
  return table;
}

int Fail(const char* what, size_t rows, size_t threads) {
  std::fprintf(stderr,
               "BIT-IDENTITY VIOLATION: %s (rows=%zu threads=%zu)\n", what,
               rows, threads);
  return 1;
}

std::vector<ServiceRequest> ServiceBatch(const Domain1D& age_domain) {
  std::vector<ServiceRequest> batch;
  for (int q = 0; q < 12; ++q) {
    batch.emplace_back(
        CountRequest{Predicate::Le("age", Value(20 + q * 5)), 1e-4});
  }
  for (int q = 0; q < 4; ++q) {
    batch.emplace_back(HistogramRequest{
        HistogramQuery{"age", age_domain,
                       q % 2 ? std::optional<Predicate>(BenchPredicate())
                             : std::nullopt},
        1e-4, EngineMechanism::kOsdpLaplaceL1});
  }
  return batch;
}

OsdpEngine ServiceEngine(const Table& table) {
  OsdpEngine::Options eopts;
  eopts.total_epsilon = 1e9;  // throughput bench, not a budget bench
  return *OsdpEngine::Create(table, BenchPolicy(), eopts);
}

}  // namespace

int main() {
  const char* max_rows_env = std::getenv("OSDP_BENCH_MAX_ROWS");
  const size_t max_rows =
      max_rows_env ? static_cast<size_t>(std::atoll(max_rows_env)) : 10000000;
  const std::vector<size_t> thread_grid =
      ParseThreads(std::getenv("OSDP_BENCH_THREADS"));

  std::vector<size_t> row_grid;
  for (size_t rows : {size_t{1000000}, size_t{10000000}}) {
    if (rows <= max_rows) row_grid.push_back(rows);
  }
  if (row_grid.empty()) row_grid.push_back(max_rows);

  const Policy policy = BenchPolicy();
  const Domain1D age_domain = *Domain1D::Numeric(0, 100, 64);
  std::vector<Measurement> results;
  volatile size_t sink = 0;

  std::printf("=== parallel scan runtime: rows/sec by thread count ===\n");
  std::printf("(hardware_concurrency=%u; row grid capped at %zu)\n\n",
              std::thread::hardware_concurrency(), max_rows);

  for (size_t rows : row_grid) {
    CensusTableOptions topts;
    topts.num_rows = rows;
    topts.seed = 0x05D9 + rows;
    const int reps = RepsFor(rows);

    // --- ingest: boxed row loop vs columnar FromColumns -----------------
    const double boxed_sec =
        TimeBest(std::max(reps / 2, 1), [&] { sink += MakeCensusTableBoxed(topts).num_rows(); });
    const double columnar_sec =
        TimeBest(std::max(reps / 2, 1), [&] { sink += MakeCensusTable(topts).num_rows(); });
    results.push_back({"ingest_boxed", rows, 0, boxed_sec,
                       static_cast<double>(rows) / boxed_sec});
    results.push_back({"ingest_columnar", rows, 0, columnar_sec,
                       static_cast<double>(rows) / columnar_sec});

    const Table table = MakeCensusTable(topts);
    const CompiledPredicate compiled =
        *CompiledPredicate::Compile(BenchPredicate(), table.schema());
    const RowMask ns_mask = policy.NonSensitiveRowMask(table);
    const HistogramQuery query{"age", age_domain,
                               std::optional<Predicate>(BenchPredicate())};

    // --- serial baselines ----------------------------------------------
    const RowMask serial_mask = compiled.EvalMask(table);
    RowMask serial_count_mask = serial_mask;
    serial_count_mask.AndWith(ns_mask);
    const size_t serial_count = serial_count_mask.Count();
    const Histogram serial_hist =
        *ComputeHistogramMasked(table, query, ns_mask);

    results.push_back({"mask", rows, 0,
                       TimeBest(reps, [&] { sink += compiled.EvalMask(table).Count(); }),
                       0});
    results.push_back({"count", rows, 0, TimeBest(reps, [&] {
                         RowMask m = compiled.EvalMask(table);
                         m.AndWith(ns_mask);
                         sink += m.Count();
                       }),
                       0});
    results.push_back({"hist", rows, 0, TimeBest(reps, [&] {
                         sink += static_cast<size_t>(
                             ComputeHistogramMasked(table, query, ns_mask)
                                 ->Total());
                       }),
                       0});
    {
      ThreadPool inline_pool(0);
      QueryService::Options sopts;
      sopts.per_session_epsilon = 1e8;
      sopts.pool = &inline_pool;
      sopts.num_shards = 1;
      auto serial_service = *QueryService::Create(ServiceEngine(table), sopts);
      std::vector<QueryService::SessionId> serial_sessions;
      for (int s = 0; s < 4; ++s) {
        serial_sessions.push_back(
            serial_service->OpenSession("s" + std::to_string(s)));
      }
      const auto batch = ServiceBatch(age_domain);
      results.push_back({"service", rows, 0, TimeBest(reps, [&] {
                           for (const auto sess : serial_sessions) {
                             for (const auto& r :
                                  serial_service->AnswerBatch(sess, batch)) {
                               sink += r.ok() ? 1 : 0;
                             }
                           }
                         }),
                         0});
    }

    // --- parallel, per thread count -------------------------------------
    for (size_t threads : thread_grid) {
      ThreadPool pool(threads);
      const ParallelScanOptions popts{&pool, threads};

      const RowMask par_mask = ParallelEvalMask(compiled, table, popts);
      if (!(par_mask == serial_mask)) return Fail("mask", rows, threads);
      RowMask par_count_mask = par_mask;
      ParallelAndWith(&par_count_mask, ns_mask, popts);
      if (ParallelCount(par_count_mask, popts) != serial_count) {
        return Fail("count", rows, threads);
      }
      const Histogram par_hist =
          *ParallelComputeHistogramMasked(table, query, ns_mask, popts);
      if (par_hist.counts() != serial_hist.counts()) {
        return Fail("hist", rows, threads);
      }

      results.push_back({"mask", rows, threads, TimeBest(reps, [&] {
                           sink +=
                               ParallelEvalMask(compiled, table, popts).Count();
                         }),
                         0});
      results.push_back({"count", rows, threads, TimeBest(reps, [&] {
                           RowMask m = ParallelEvalMask(compiled, table, popts);
                           ParallelAndWith(&m, ns_mask, popts);
                           sink += ParallelCount(m, popts);
                         }),
                         0});
      results.push_back({"hist", rows, threads, TimeBest(reps, [&] {
                           sink += static_cast<size_t>(
                               ParallelComputeHistogramMasked(table, query,
                                                              ns_mask, popts)
                                   ->Total());
                         }),
                         0});

      QueryService::Options sopts;
      sopts.per_session_epsilon = 1e8;
      sopts.pool = &pool;
      sopts.num_shards = threads;
      auto service = *QueryService::Create(ServiceEngine(table), sopts);
      std::vector<QueryService::SessionId> sessions;
      for (int s = 0; s < 4; ++s) {
        sessions.push_back(service->OpenSession("s" + std::to_string(s)));
      }
      const auto batch = ServiceBatch(age_domain);

      // Cross-check on fresh instances (fresh = same per-session seq
      // stream): parallel service answers must be bit-identical to the
      // inline-pool service's.
      {
        ThreadPool inline_pool(0);
        QueryService::Options ref_opts = sopts;
        ref_opts.pool = &inline_pool;
        ref_opts.num_shards = 1;
        auto ref_service =
            *QueryService::Create(ServiceEngine(table), ref_opts);
        auto par_service = *QueryService::Create(ServiceEngine(table), sopts);
        const auto ref_session = ref_service->OpenSession("check");
        const auto par_session = par_service->OpenSession("check");
        const auto ref_answers = ref_service->AnswerBatch(ref_session, batch);
        const auto par_answers = par_service->AnswerBatch(par_session, batch);
        for (size_t q = 0; q < batch.size(); ++q) {
          if (ref_answers[q].ok() != par_answers[q].ok()) {
            return Fail("service status", rows, threads);
          }
          if (!ref_answers[q].ok()) continue;
          if (ref_answers[q]->count != par_answers[q]->count) {
            return Fail("service count", rows, threads);
          }
          const auto& rh = ref_answers[q]->histogram;
          const auto& ph = par_answers[q]->histogram;
          if (rh.has_value() != ph.has_value() ||
              (rh.has_value() && rh->counts() != ph->counts())) {
            return Fail("service histogram", rows, threads);
          }
        }
      }
      results.push_back({"service", rows, threads, TimeBest(reps, [&] {
                           for (const auto sess : sessions) {
                             for (const auto& r :
                                  service->AnswerBatch(sess, batch)) {
                               sink += r.ok() ? 1 : 0;
                             }
                           }
                         }),
                         0});
    }

    // rows/sec + table.
    for (Measurement& m : results) {
      if (m.rows == rows && m.rows_per_sec == 0) {
        m.rows_per_sec = static_cast<double>(rows) / m.sec_per_iter;
      }
    }
    TextTable text({"op", "serial rows/s", "threads", "parallel rows/s",
                    "speedup"});
    for (const char* op : {"mask", "count", "hist", "service"}) {
      double serial_rps = 0;
      for (const Measurement& m : results) {
        if (m.rows == rows && m.op == op && m.threads == 0) {
          serial_rps = m.rows_per_sec;
        }
      }
      for (const Measurement& m : results) {
        if (m.rows != rows || m.op != op || m.threads == 0) continue;
        text.AddRow({op, TextTable::FmtAuto(serial_rps),
                     std::to_string(m.threads),
                     TextTable::FmtAuto(m.rows_per_sec),
                     TextTable::Fmt(m.rows_per_sec / serial_rps, 2) + "x"});
      }
    }
    std::printf("--- %zu rows ---\n%s\n", rows, text.ToString().c_str());
    std::printf(
        "ingest: boxed %.3gs -> columnar %.3gs (%.1fx)\n\n", boxed_sec,
        columnar_sec, boxed_sec / columnar_sec);
  }

  // JSON artefact.
  const char* json_env = std::getenv("OSDP_BENCH_JSON");
  const std::string json_path =
      json_env ? json_env : "BENCH_parallel_scan.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"parallel_scan\",\n"
               "  \"hardware_concurrency\": %u,\n  \"results\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"rows\": %zu, \"threads\": %zu, "
                 "\"sec_per_iter\": %.6g, \"rows_per_sec\": %.6g}%s\n",
                 m.op.c_str(), m.rows, m.threads, m.sec_per_iter,
                 m.rows_per_sec, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu measurements); sink=%zu\n", json_path.c_str(),
              results.size(), static_cast<size_t>(sink));
  return 0;
}
