// Benchmark for the QueryService mask cache (src/runtime/mask_cache.h):
// repeated-query batch throughput with the cache enabled (hot) vs disabled
// (cold), swept over table size × batch repeat factor.
//
// Each batch draws from a fixed pool of 8 distinct WHERE-bearing requests
// (6 predicate counts + 2 filtered histograms) repeated `repeat` times, so
// the steady-state hit rate is (repeat-1)/repeat of lookups plus everything
// the warm cache already holds — the sweep shows the cache's value grow
// from 0% hits (repeat 1, first pass) to >90% (repeat 16).
//
// Cross-checks (exit non-zero on any failure; the bench_query_cache_smoke
// ctest target runs them on every test run):
//   * every hot answer must be bit-identical to the cold service's answer
//     for the same (session, seq) — the cache must be observationally
//     invisible;
//   * at repeat >= 16 the measured first-pass hit rate must be >= 90%
//     (94.5% deterministically: 7 misses in 128 lookups — the 8 requests
//     span only 7 canonical fingerprints, the commuted pair shares one) —
//     the acceptance floor of the caching subsystem.
//
// Knobs: OSDP_BENCH_MAX_ROWS caps the row grid (default 1M; the CI smoke
// run uses 50000), OSDP_BENCH_JSON the output path (default
// BENCH_query_cache.json). The JSON records hardware_concurrency per bench
// conventions — the cache win is per-core (it removes scans, not thread
// time), so honest 1-core numbers still show it, unlike the scaling benches.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/benchdata/table_gen.h"
#include "src/core/engine.h"
#include "src/data/predicate.h"
#include "src/eval/table_printer.h"
#include "src/hist/histogram_query.h"
#include "src/policy/policy.h"
#include "src/runtime/mask_cache.h"
#include "src/runtime/query_service.h"
#include "src/runtime/thread_pool.h"

using namespace osdp;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double TimeBest(int reps, const Fn& fn) {
  fn();  // warmup
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t0 = NowSec();
    fn();
    best = std::min(best, NowSec() - t0);
  }
  return best;
}

int RepsFor(size_t rows) {
  if (rows >= 1000000) return 3;
  return 7;
}

Policy BenchPolicy() {
  return Policy::SensitiveWhen(
      Predicate::Or(Predicate::Eq("opt_in", Value(0)),
                    Predicate::Lt("age", Value(18))),
      "bench_policy");
}

// 8 distinct requests, every one carrying a WHERE scan (so every query
// exercises the cache): 6 counts + 2 filtered histograms. Index 1 is a
// commuted spelling of index 0 — one shared cache entry.
std::vector<ServiceRequest> RequestPool(const Domain1D& age_domain) {
  const Predicate a = Predicate::Le("age", Value(40));
  const Predicate b = Predicate::Eq("opt_in", Value(1));
  std::vector<ServiceRequest> pool;
  pool.emplace_back(CountRequest{Predicate::And(a, b), 1e-4});
  pool.emplace_back(CountRequest{Predicate::And(b, a), 1e-4});
  pool.emplace_back(CountRequest{Predicate::Le("age", Value(30)), 1e-4});
  pool.emplace_back(CountRequest{
      Predicate::And(Predicate::Gt("income", Value(30000.0)),
                     Predicate::In("race", {Value("C1"), Value("C2")})),
      1e-4});
  pool.emplace_back(CountRequest{Predicate::Ge("zip", Value(5000)), 1e-4});
  pool.emplace_back(CountRequest{
      Predicate::Or(Predicate::Lt("age", Value(25)),
                    Predicate::Gt("age", Value(60))),
      1e-4});
  pool.emplace_back(HistogramRequest{
      HistogramQuery{"age", age_domain, b}, 1e-4,
      EngineMechanism::kOsdpLaplaceL1});
  pool.emplace_back(HistogramRequest{
      HistogramQuery{"age", age_domain, a}, 1e-4,
      EngineMechanism::kOsdpLaplaceL1});
  return pool;
}

std::unique_ptr<QueryService> MakeService(const Table& table,
                                          ThreadPool* pool,
                                          size_t cache_bytes) {
  OsdpEngine::Options eopts;
  eopts.total_epsilon = 1e9;  // throughput bench, not a budget bench
  QueryService::Options sopts;
  sopts.per_session_epsilon = 1e8;
  sopts.pool = pool;
  sopts.num_shards = 1;
  sopts.mask_cache_bytes = cache_bytes;
  return *QueryService::Create(*OsdpEngine::Create(table, BenchPolicy(), eopts),
                               sopts);
}

struct Measurement {
  size_t rows;
  size_t repeat;
  size_t queries;
  double hit_rate;
  uint64_t hits, misses, evictions;
  size_t cache_bytes;
  double cold_qps;
  double hot_qps;
  // Per-query latency percentiles (µs) over one steady-state hot batch,
  // from ServiceAnswer.server_duration_micros — the same field the future
  // load harness will aggregate.
  bench::LatencyStats hot_lat;
};

int Fail(const char* what, size_t rows, size_t repeat, size_t q) {
  std::fprintf(stderr,
               "BIT-IDENTITY VIOLATION: %s (rows=%zu repeat=%zu query=%zu)\n",
               what, rows, repeat, q);
  return 1;
}

}  // namespace

int main() {
  const char* max_rows_env = std::getenv("OSDP_BENCH_MAX_ROWS");
  const size_t max_rows =
      max_rows_env ? static_cast<size_t>(std::atoll(max_rows_env)) : 1000000;

  std::vector<size_t> row_grid;
  for (size_t rows : {size_t{100000}, size_t{1000000}}) {
    if (rows <= max_rows) row_grid.push_back(rows);
  }
  if (row_grid.empty()) row_grid.push_back(max_rows);
  const size_t repeat_grid[] = {1, 4, 16};

  const Domain1D age_domain = *Domain1D::Numeric(0, 100, 64);
  const std::vector<ServiceRequest> pool = RequestPool(age_domain);
  ThreadPool inline_pool(0);  // per-core numbers: the cache removes scans,
                              // not thread time
  std::vector<Measurement> results;
  volatile size_t sink = 0;

  std::printf("=== mask cache: repeated-query batches, hot vs cold ===\n");
  std::printf("(hardware_concurrency=%u; row grid capped at %zu)\n\n",
              std::thread::hardware_concurrency(), max_rows);

  for (size_t rows : row_grid) {
    CensusTableOptions topts;
    topts.num_rows = rows;
    topts.seed = 0x05D9 + rows;
    const Table table = MakeCensusTable(topts);
    const int reps = RepsFor(rows);

    TextTable text({"repeat", "queries", "hit rate", "cold q/s", "hot q/s",
                    "speedup", "hot p50 us", "hot p99 us"});
    for (size_t repeat : repeat_grid) {
      std::vector<ServiceRequest> batch;
      batch.reserve(pool.size() * repeat);
      for (size_t r = 0; r < repeat; ++r) {
        for (const ServiceRequest& req : pool) batch.push_back(req);
      }

      // Divergence check on fresh twins (fresh = identical session ids and
      // per-session seq streams): the hot service's answers must be
      // bit-identical to the cold service's. The hot first pass also yields
      // the deterministic first-pass hit rate.
      auto cold = MakeService(table, &inline_pool, 0);
      auto hot = MakeService(table, &inline_pool, 64ull << 20);
      const auto cold_session = cold->OpenSession("check");
      const auto hot_session = hot->OpenSession("check");
      const auto cold_answers = cold->AnswerBatch(cold_session, batch);
      const auto hot_answers = hot->AnswerBatch(hot_session, batch);
      for (size_t q = 0; q < batch.size(); ++q) {
        if (cold_answers[q].ok() != hot_answers[q].ok()) {
          return Fail("status", rows, repeat, q);
        }
        if (!cold_answers[q].ok()) continue;
        if (cold_answers[q]->count != hot_answers[q]->count) {
          return Fail("count", rows, repeat, q);
        }
        const auto& ch = cold_answers[q]->histogram;
        const auto& hh = hot_answers[q]->histogram;
        if (ch.has_value() != hh.has_value() ||
            (ch.has_value() && ch->counts() != hh->counts())) {
          return Fail("histogram", rows, repeat, q);
        }
      }
      const MaskCache::Stats first_pass = hot->cache_stats();
      const double hit_rate =
          first_pass.hits + first_pass.misses == 0
              ? 0.0
              : static_cast<double>(first_pass.hits) /
                    static_cast<double>(first_pass.hits + first_pass.misses);
      if (repeat >= 16 && hit_rate < 0.90) {
        std::fprintf(stderr,
                     "HIT-RATE FLOOR VIOLATION: %.1f%% < 90%% "
                     "(rows=%zu repeat=%zu)\n",
                     100.0 * hit_rate, rows, repeat);
        return 1;
      }

      // Throughput: steady state on each service (the hot cache is warm —
      // the miss cost is in the first pass above; reps take the best).
      const double cold_sec = TimeBest(reps, [&] {
        for (const auto& r : cold->AnswerBatch(cold_session, batch)) {
          sink += r.ok() ? 1 : 0;
        }
      });
      const double hot_sec = TimeBest(reps, [&] {
        for (const auto& r : hot->AnswerBatch(hot_session, batch)) {
          sink += r.ok() ? 1 : 0;
        }
      });
      const double cold_qps = static_cast<double>(batch.size()) / cold_sec;
      const double hot_qps = static_cast<double>(batch.size()) / hot_sec;

      // Latency percentiles from one steady-state hot pass: every answer
      // carries its own server-side duration, so no external clocks needed.
      std::vector<double> lat_us;
      lat_us.reserve(batch.size());
      for (const auto& r : hot->AnswerBatch(hot_session, batch)) {
        if (r.ok()) lat_us.push_back(r->server_duration_micros);
      }
      const bench::LatencyStats hot_lat =
          bench::SummarizeLatencies(std::move(lat_us));

      const MaskCache::Stats stats = hot->cache_stats();
      results.push_back({rows, repeat, batch.size(), hit_rate, stats.hits,
                         stats.misses, stats.evictions, stats.bytes, cold_qps,
                         hot_qps, hot_lat});
      text.AddRow({std::to_string(repeat), std::to_string(batch.size()),
                   TextTable::Fmt(100.0 * hit_rate, 1) + "%",
                   TextTable::FmtAuto(cold_qps), TextTable::FmtAuto(hot_qps),
                   TextTable::Fmt(hot_qps / cold_qps, 2) + "x",
                   TextTable::Fmt(hot_lat.p50, 1),
                   TextTable::Fmt(hot_lat.p99, 1)});
    }
    std::printf("--- %zu rows ---\n%s\n", rows, text.ToString().c_str());
  }

  // JSON artefact.
  const char* json_env = std::getenv("OSDP_BENCH_JSON");
  const std::string json_path = json_env ? json_env : "BENCH_query_cache.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"query_cache\",\n"
               "  \"hardware_concurrency\": %u,\n  \"results\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(
        f,
        "    {\"rows\": %zu, \"repeat\": %zu, \"queries\": %zu, "
        "\"hit_rate\": %.4f, \"hits\": %llu, \"misses\": %llu, "
        "\"evictions\": %llu, \"cache_bytes\": %zu, "
        "\"cold_qps\": %.6g, \"hot_qps\": %.6g, \"speedup\": %.3f, "
        "\"hot_p50_us\": %.3f, \"hot_p95_us\": %.3f, \"hot_p99_us\": %.3f, "
        "\"hot_max_us\": %.3f}%s\n",
        m.rows, m.repeat, m.queries, m.hit_rate,
        static_cast<unsigned long long>(m.hits),
        static_cast<unsigned long long>(m.misses),
        static_cast<unsigned long long>(m.evictions), m.cache_bytes,
        m.cold_qps, m.hot_qps, m.hot_qps / m.cold_qps, m.hot_lat.p50,
        m.hot_lat.p95, m.hot_lat.p99, m.hot_lat.max,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu measurements); sink=%zu\n", json_path.c_str(),
              results.size(), static_cast<size_t>(sink));
  return 0;
}
