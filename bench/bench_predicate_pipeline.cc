// Micro-benchmark of the compiled predicate pipeline: rows/sec for row-mask
// construction, policy-masked filtered counts, and masked histograms, for
// three evaluation paths across row counts and predicate shapes.
//
//   boxed      GetRow() + Predicate::Eval(schema, row): materializes every
//              cell as a dynamic Value (string copies included) — the seed
//              repo's slow path.
//   reference  Predicate::Eval(table, row): row-at-a-time over the columnar
//              storage, no boxing, but per-row name resolution and tree
//              dispatch. This is the semantics oracle the property test
//              checks the compiled path against.
//   compiled   CompiledPredicate::EvalMask: bound once against the schema,
//              evaluated column-at-a-time into a packed RowMask.
//
// Knobs: OSDP_BENCH_MAX_ROWS caps the row grid (default 10M; set 100000 for
// a CI smoke run), OSDP_BENCH_JSON sets the output path (default
// BENCH_predicate_pipeline.json in the working directory).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/benchdata/table_gen.h"
#include "src/data/compiled_predicate.h"
#include "src/data/predicate.h"
#include "src/data/row_mask.h"
#include "src/eval/table_printer.h"
#include "src/hist/histogram_query.h"
#include "src/policy/policy.h"

using namespace osdp;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Shape {
  const char* name;
  int leaves;
  Predicate pred;
};

std::vector<Shape> MakeShapes() {
  return {
      {"num1", 1, Predicate::Le("age", Value(40))},
      {"mixed3", 3,
       Predicate::And(Predicate::Or(Predicate::Eq("race", Value("C3")),
                                    Predicate::Eq("opt_in", Value(0))),
                      Predicate::Le("age", Value(40)))},
      {"in5", 5,
       Predicate::And(
           Predicate::And(
               Predicate::In("race", {Value("C1"), Value("C2"), Value("C5")}),
               Predicate::Gt("income", Value(30000.0))),
           Predicate::Not(Predicate::Lt("zip", Value(2000))))},
  };
}

struct Measurement {
  std::string shape;
  size_t rows;
  std::string op;    // mask | count | hist
  std::string path;  // boxed | reference | compiled
  double sec_per_iter;
  double rows_per_sec;
};

// Runs fn `reps` times after one warmup; returns best-of seconds per call.
template <typename Fn>
double TimeBest(int reps, const Fn& fn) {
  fn();  // warmup
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t0 = NowSec();
    fn();
    best = std::min(best, NowSec() - t0);
  }
  return best;
}

int RepsFor(size_t rows) {
  if (rows >= 10000000) return 2;
  if (rows >= 1000000) return 3;
  if (rows >= 100000) return 7;
  return 30;
}

}  // namespace

int main() {
  const char* max_rows_env = std::getenv("OSDP_BENCH_MAX_ROWS");
  const size_t max_rows =
      max_rows_env ? static_cast<size_t>(std::atoll(max_rows_env)) : 10000000;
  std::vector<size_t> row_grid;
  for (size_t rows : {size_t{10000}, size_t{100000}, size_t{1000000},
                      size_t{10000000}}) {
    if (rows <= max_rows) row_grid.push_back(rows);
  }
  if (row_grid.empty()) row_grid.push_back(max_rows);

  // The policy behind the engine-style masked ops (ComputeHistogramMasked's
  // x_ns mask, AnswerCount's non-sensitive restriction).
  Policy policy = Policy::SensitiveWhen(
      Predicate::Or(Predicate::Eq("opt_in", Value(0)),
                    Predicate::Lt("age", Value(18))),
      "bench_policy");
  const Domain1D age_domain = *Domain1D::Numeric(0, 100, 64);

  std::vector<Measurement> results;
  volatile size_t sink = 0;  // defeats dead-code elimination

  std::printf("=== compiled predicate pipeline: rows/sec by path ===\n");
  std::printf("(best of N; 1-thread; row grid capped at %zu)\n\n", max_rows);

  for (size_t rows : row_grid) {
    CensusTableOptions topts;
    topts.num_rows = rows;
    topts.seed = 0x05D9 + rows;
    const Table table = MakeCensusTable(topts);
    const Schema& schema = table.schema();
    const int reps = RepsFor(rows);
    const RowMask ns_mask = policy.NonSensitiveRowMask(table);
    const std::vector<bool> ns_bools = ns_mask.ToBools();

    for (const Shape& shape : MakeShapes()) {
      const Predicate& pred = shape.pred;
      const CompiledPredicate compiled =
          *CompiledPredicate::Compile(pred, schema);

      auto record = [&](const char* op, const char* path, double sec) {
        results.push_back({shape.name, rows, op, path, sec,
                           static_cast<double>(rows) / sec});
      };

      // --- mask construction -------------------------------------------
      record("mask", "boxed", TimeBest(reps, [&] {
               std::vector<bool> mask(table.num_rows());
               for (size_t r = 0; r < table.num_rows(); ++r) {
                 mask[r] = pred.Eval(schema, table.GetRow(r));
               }
               sink += mask.size();
             }));
      record("mask", "reference", TimeBest(reps, [&] {
               std::vector<bool> mask(table.num_rows());
               for (size_t r = 0; r < table.num_rows(); ++r) {
                 mask[r] = pred.Eval(table, r);
               }
               sink += mask.size();
             }));
      record("mask", "compiled", TimeBest(reps, [&] {
               sink += compiled.EvalMask(table).Count();
             }));

      // --- filtered count over the non-sensitive rows ------------------
      record("count", "boxed", TimeBest(reps, [&] {
               size_t count = 0;
               for (size_t r = 0; r < table.num_rows(); ++r) {
                 if (ns_bools[r] && pred.Eval(schema, table.GetRow(r))) ++count;
               }
               sink += count;
             }));
      record("count", "reference", TimeBest(reps, [&] {
               size_t count = 0;
               for (size_t r = 0; r < table.num_rows(); ++r) {
                 if (ns_bools[r] && pred.Eval(table, r)) ++count;
               }
               sink += count;
             }));
      record("count", "compiled", TimeBest(reps, [&] {
               RowMask m = compiled.EvalMask(table);
               m.AndWith(ns_mask);
               sink += m.Count();
             }));

      // --- masked histogram (x_ns with WHERE) --------------------------
      HistogramQuery query{"age", age_domain, std::optional<Predicate>(pred)};
      record("hist", "boxed", TimeBest(reps, [&] {
               Histogram h(age_domain.size());
               for (size_t r = 0; r < table.num_rows(); ++r) {
                 if (!ns_bools[r]) continue;
                 if (!pred.Eval(schema, table.GetRow(r))) continue;
                 h.Add(age_domain.BinOf(
                     static_cast<double>(table.GetValue(r, 0).AsInt64())));
               }
               sink += static_cast<size_t>(h.Total());
             }));
      record("hist", "reference", TimeBest(reps, [&] {
               Histogram h(age_domain.size());
               const auto& age = table.Int64Column(0);
               for (size_t r = 0; r < table.num_rows(); ++r) {
                 if (!ns_bools[r]) continue;
                 if (!pred.Eval(table, r)) continue;
                 h.Add(age_domain.BinOf(static_cast<double>(age[r])));
               }
               sink += static_cast<size_t>(h.Total());
             }));
      record("hist", "compiled", TimeBest(reps, [&] {
               sink += static_cast<size_t>(
                   ComputeHistogramMasked(table, query, ns_mask)->Total());
             }));
    }

    // Per-row-count table.
    TextTable text({"shape", "op", "boxed rows/s", "ref rows/s",
                    "compiled rows/s", "speedup vs boxed", "vs ref"});
    for (const Shape& shape : MakeShapes()) {
      for (const char* op : {"mask", "count", "hist"}) {
        double by_path[3] = {0, 0, 0};
        for (const Measurement& m : results) {
          if (m.shape != shape.name || m.rows != rows || m.op != op) continue;
          if (m.path == "boxed") by_path[0] = m.rows_per_sec;
          if (m.path == "reference") by_path[1] = m.rows_per_sec;
          if (m.path == "compiled") by_path[2] = m.rows_per_sec;
        }
        text.AddRow({shape.name, op, TextTable::FmtAuto(by_path[0]),
                     TextTable::FmtAuto(by_path[1]),
                     TextTable::FmtAuto(by_path[2]),
                     TextTable::Fmt(by_path[2] / by_path[0], 1) + "x",
                     TextTable::Fmt(by_path[2] / by_path[1], 1) + "x"});
      }
    }
    std::printf("--- %zu rows ---\n%s\n", rows, text.ToString().c_str());
  }

  // Acceptance line: 1M rows, 3-leaf predicate, mask + count >= 5x.
  for (const char* op : {"mask", "count"}) {
    double boxed = 0, compiled_rps = 0;
    for (const Measurement& m : results) {
      if (m.shape == "mixed3" && m.rows == 1000000 && m.op == op) {
        if (m.path == "boxed") boxed = m.rows_per_sec;
        if (m.path == "compiled") compiled_rps = m.rows_per_sec;
      }
    }
    if (boxed > 0) {
      std::printf("acceptance[%s @1M, 3-leaf]: %.1fx vs boxed\n", op,
                  compiled_rps / boxed);
    }
  }

  // JSON artefact.
  const char* json_env = std::getenv("OSDP_BENCH_JSON");
  const std::string json_path =
      json_env ? json_env : "BENCH_predicate_pipeline.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"predicate_pipeline\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"rows\": %zu, \"op\": \"%s\", "
                 "\"path\": \"%s\", \"sec_per_iter\": %.6g, "
                 "\"rows_per_sec\": %.6g}%s\n",
                 m.shape.c_str(), m.rows, m.op.c_str(), m.path.c_str(),
                 m.sec_per_iter, m.rows_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu measurements); sink=%zu\n", json_path.c_str(),
              results.size(), static_cast<size_t>(sink));
  return 0;
}
