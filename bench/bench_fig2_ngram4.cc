// Figure 2: mean relative error of 4-gram release across policies and ε.

#include "bench/bench_ngram_common.h"

int main() { return osdp::bench::RunNgramFigure(4, "Figure 2"); }
