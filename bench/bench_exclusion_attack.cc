// Exclusion-attack audit (Sections 3.2 / 3.4): the exact posterior-odds
// exponent φ of every mechanism family discussed in the paper, over domain
// sizes and ε — the machine-checked version of Theorems 3.1, 3.4 and the
// access-control counterexamples.

#include <cmath>
#include <cstdio>

#include "src/attack/exclusion.h"
#include "src/eval/table_printer.h"
#include "src/mech/suppress.h"

using namespace osdp;

namespace {

std::string PhiCell(double phi) {
  return std::isinf(phi) ? "unbounded" : TextTable::Fmt(phi, 3);
}

}  // namespace

int main() {
  std::printf("=== exclusion-attack exponent phi by mechanism ===\n\n");

  TextTable table({"mechanism", "domain", "eps", "phi", "OSDP at eps?"});
  for (size_t domain : {2u, 4u, 16u}) {
    std::vector<bool> sensitive(domain, false);
    sensitive[0] = true;
    for (double eps : {0.5, 1.0}) {
      for (auto& m : {MakeOsdpRRModel(sensitive, eps),
                      MakeKRandomizedResponseModel(sensitive, eps)}) {
        const double phi = *ExclusionAttackPhi(m);
        table.AddRow({m.name, std::to_string(domain), TextTable::Fmt(eps, 1),
                      PhiCell(phi),
                      *SatisfiesOsdpSingleRecord(m, eps) ? "yes" : "NO"});
      }
    }
    for (auto& m : {MakeTrumanModel(sensitive), MakeNonTrumanModel(sensitive)}) {
      const double phi = *ExclusionAttackPhi(m);
      table.AddRow({m.name, std::to_string(domain), "-", PhiCell(phi), "NO"});
    }
  }
  std::printf("%s", table.ToString().c_str());

  std::printf("\n=== PDP Suppress: phi = tau (Theorem 3.4) ===\n");
  TextTable pdp({"tau", "phi", "protection vs (P,1)-OSDP"});
  for (double tau : {1.0, 10.0, 50.0, 100.0}) {
    PrivacyGuarantee g = SuppressGuarantee(tau, "Phi_P");
    pdp.AddRow({TextTable::Fmt(tau, 0), TextTable::Fmt(g.exclusion_attack_phi, 0),
                TextTable::Fmt(tau, 0) + "x weaker"});
  }
  std::printf("%s", pdp.ToString().c_str());
  std::printf("\nreading: every OSDP/DP mechanism keeps phi = eps; releasing\n"
              "non-sensitive records truthfully (Truman / Suppress(inf) /\n"
              "PDP threshold) makes the posterior odds unbounded.\n");
  return 0;
}
