// Micro-benchmarks (google-benchmark): throughput of every mechanism and of
// the hot substrate paths, across histogram sizes.

#include <benchmark/benchmark.h>

#include "src/benchdata/dpbench.h"
#include "src/benchdata/sampling.h"
#include "src/common/distributions.h"
#include "src/mech/dawa.h"
#include "src/mech/dawaz.h"
#include "src/mech/laplace.h"
#include "src/mech/osdp_laplace.h"
#include "src/mech/osdp_rr.h"

namespace osdp {
namespace {

Histogram MakeInput(size_t d) {
  Histogram x(d);
  Rng rng(1);
  for (size_t i = 0; i < d; ++i) {
    x[i] = static_cast<double>(rng.NextBounded(1000));
  }
  return x;
}

void BM_SampleLaplace(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleLaplace(rng, 2.0));
  }
}
BENCHMARK(BM_SampleLaplace);

void BM_SampleOneSidedLaplace(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleOneSidedLaplace(rng, 1.0));
  }
}
BENCHMARK(BM_SampleOneSidedLaplace);

void BM_SampleBinomialLarge(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleBinomial(rng, 1000000, 0.63));
  }
}
BENCHMARK(BM_SampleBinomialLarge);

void BM_LaplaceMechanism(benchmark::State& state) {
  const Histogram x = MakeInput(static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*LaplaceMechanism(x, 1.0, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LaplaceMechanism)->Arg(1024)->Arg(4096);

void BM_OsdpLaplaceL1(benchmark::State& state) {
  const Histogram x = MakeInput(static_cast<size_t>(state.range(0)));
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*OsdpLaplaceL1(x, 1.0, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OsdpLaplaceL1)->Arg(1024)->Arg(4096);

void BM_OsdpRRHistogram(benchmark::State& state) {
  const Histogram x = MakeInput(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*OsdpRRHistogram(x, 1.0, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OsdpRRHistogram)->Arg(1024)->Arg(4096);

void BM_DawaHalfOverlap(benchmark::State& state) {
  const Histogram x = MakeInput(static_cast<size_t>(state.range(0)));
  Rng rng(8);
  DawaOptions opts;
  opts.positions = DawaPositions::kHalfOverlap;
  for (auto _ : state) {
    benchmark::DoNotOptimize(*Dawa(x, 1.0, opts, rng));
  }
}
BENCHMARK(BM_DawaHalfOverlap)->Arg(1024)->Arg(4096);

void BM_DawaEveryPosition(benchmark::State& state) {
  const Histogram x = MakeInput(static_cast<size_t>(state.range(0)));
  Rng rng(9);
  DawaOptions opts;
  opts.positions = DawaPositions::kEvery;
  for (auto _ : state) {
    benchmark::DoNotOptimize(*Dawa(x, 1.0, opts, rng));
  }
}
BENCHMARK(BM_DawaEveryPosition)->Arg(512)->Arg(1024);

void BM_Dawaz(benchmark::State& state) {
  const Histogram x = MakeInput(static_cast<size_t>(state.range(0)));
  Rng prep(10);
  const Histogram xns = *SampleWithoutReplacement(
      x, static_cast<int64_t>(0.9 * x.Total()), prep);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*Dawaz(x, xns, 1.0, rng));
  }
}
BENCHMARK(BM_Dawaz)->Arg(1024)->Arg(4096);

void BM_MSampling(benchmark::State& state) {
  BenchmarkDataset d = *MakeDPBenchDataset("Income", 4096, 1);
  Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*MSampling(d.hist, 0.5, MSamplingOptions{}, rng));
  }
}
BENCHMARK(BM_MSampling);

}  // namespace
}  // namespace osdp

BENCHMARK_MAIN();
