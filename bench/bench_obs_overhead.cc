// Observability overhead gate: twin QueryServices over the same table — one
// with the full metrics/tracing surface enabled (the default), one created
// with Options::metrics_enabled=false so every telemetry site collapses to a
// single relaxed load — answer identical warmed-cache batches, and the
// enabled twin must stay within OSDP_BENCH_MAX_OBS_OVERHEAD (default 0.02 =
// 2%; "0" disables the gate) of the disabled twin's best batch time.
//
// Cross-checks (any failure exits non-zero; the bench_obs_overhead_smoke
// ctest relies on this):
//   * BIT-IDENTITY: every answer from the enabled twin — status, count,
//     histogram bins, generation, seq, cache_hit — must equal the disabled
//     twin's. Only server_duration_micros (metadata, not an answer bit) may
//     differ. Observability must never influence answers.
//   * OVERHEAD GATE: the median of per-pair enabled/disabled batch-time
//     ratios, minus one, must stay <= the configured limit. Each repetition
//     times both twins back to back (order alternating), so slow-varying
//     host noise — frequency scaling, a neighbor VM stealing the core —
//     lands on both halves of a pair and cancels in the ratio; the median
//     then shrugs off the pairs a noise burst split. (A best-of-N ratio of
//     independent runs swings by ±15% on a busy single-core host; the
//     paired median is what makes a 2% gate enforceable.)
//   * COVERAGE: DumpMetricsJson() from the enabled twin names every
//     subsystem — service.*, cache.*, pool.*, ingest.*, budget.*, fault.* —
//     and the trace ring holds traces. The disabled twin's ring stays empty
//     and its stage histograms stay at count 0.
//
// Knobs: OSDP_BENCH_MAX_ROWS (table size, default 100000), OSDP_BENCH_REPS
// (timing pairs, default 41), OSDP_BENCH_MAX_OBS_OVERHEAD (the gate),
// OSDP_BENCH_JSON (artifact path, default BENCH_obs_overhead.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/benchdata/table_gen.h"
#include "src/common/fault.h"
#include "src/core/engine.h"
#include "src/data/predicate.h"
#include "src/eval/table_printer.h"
#include "src/hist/histogram_query.h"
#include "src/policy/policy.h"
#include "src/runtime/query_service.h"
#include "src/runtime/thread_pool.h"

using namespace osdp;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Policy BenchPolicy() {
  return Policy::SensitiveWhen(
      Predicate::Or(Predicate::Eq("opt_in", Value(0)),
                    Predicate::Lt("age", Value(18))),
      "bench_policy");
}

// Same shape as bench_query_cache's pool: every request carries a WHERE scan
// so the cache, scan, mechanism, and budget stages all run.
std::vector<ServiceRequest> RequestPool(const Domain1D& age_domain) {
  const Predicate a = Predicate::Le("age", Value(40));
  const Predicate b = Predicate::Eq("opt_in", Value(1));
  std::vector<ServiceRequest> pool;
  pool.emplace_back(CountRequest{Predicate::And(a, b), 1e-4});
  pool.emplace_back(CountRequest{Predicate::Le("age", Value(30)), 1e-4});
  pool.emplace_back(CountRequest{Predicate::Ge("zip", Value(5000)), 1e-4});
  pool.emplace_back(CountRequest{
      Predicate::Or(Predicate::Lt("age", Value(25)),
                    Predicate::Gt("age", Value(60))),
      1e-4});
  pool.emplace_back(HistogramRequest{HistogramQuery{"age", age_domain, b},
                                     1e-4, EngineMechanism::kOsdpLaplaceL1});
  pool.emplace_back(HistogramRequest{HistogramQuery{"age", age_domain, a},
                                     1e-4, EngineMechanism::kOsdpLaplaceL1});
  return pool;
}

std::unique_ptr<QueryService> MakeService(const Table& table, ThreadPool* pool,
                                          bool metrics_enabled) {
  OsdpEngine::Options eopts;
  eopts.total_epsilon = 1e9;
  QueryService::Options sopts;
  sopts.per_session_epsilon = 1e8;
  sopts.pool = pool;
  sopts.num_shards = 1;
  sopts.mask_cache_bytes = 64ull << 20;
  sopts.metrics_enabled = metrics_enabled;
  return *QueryService::Create(*OsdpEngine::Create(table, BenchPolicy(), eopts),
                               sopts);
}

int Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "OBS OVERHEAD BENCH FAILED: %s: %s\n", what,
               detail.c_str());
  return 1;
}

bool Covers(const std::string& json, const char* key) {
  return json.find(key) != std::string::npos;
}

}  // namespace

int main() {
  const char* max_rows_env = std::getenv("OSDP_BENCH_MAX_ROWS");
  const size_t rows =
      max_rows_env ? static_cast<size_t>(std::atoll(max_rows_env)) : 100000;
  const int reps = bench::Reps(41);
  const double max_overhead = bench::EnvGate("OSDP_BENCH_MAX_OBS_OVERHEAD", 0.02);

  std::printf("=== observability overhead: metrics on vs off twins ===\n");
  std::printf("(hardware_concurrency=%u; rows=%zu, reps=%d, gate=%.1f%%)\n\n",
              std::thread::hardware_concurrency(), rows,
              reps, 100.0 * max_overhead);

  CensusTableOptions topts;
  topts.num_rows = rows;
  topts.seed = 0x0B5;
  const Table table = MakeCensusTable(topts);
  CensusTableOptions iopts;
  iopts.num_rows = 500;
  iopts.seed = 0x0B6;
  const Table ingest_batch = MakeCensusTable(iopts);

  const Domain1D age_domain = *Domain1D::Numeric(0, 100, 64);
  const std::vector<ServiceRequest> request_pool = RequestPool(age_domain);
  std::vector<ServiceRequest> batch;
  constexpr size_t kRepeat = 16;
  batch.reserve(request_pool.size() * kRepeat);
  for (size_t r = 0; r < kRepeat; ++r) {
    for (const ServiceRequest& req : request_pool) batch.push_back(req);
  }

  // Twin services. Separate pools: enabling metrics on a pool is one-way, so
  // sharing one would silently instrument the disabled twin's chunks.
  ThreadPool pool_on(0), pool_off(0);
  auto on = MakeService(table, &pool_on, true);
  auto off = MakeService(table, &pool_off, false);
  // One identical ingest each, so ingest.* metrics are live and both twins
  // answer against the same generation.
  if (!on->Ingest(ingest_batch).ok() || !off->Ingest(ingest_batch).ok()) {
    return Fail("ingest", "seed ingest failed");
  }
  const auto session_on = on->OpenSession("twin");
  const auto session_off = off->OpenSession("twin");

  // Warm pass doubles as the bit-identity check: identical session ids and
  // seq streams, so answers must match bit for bit.
  const auto answers_on = on->AnswerBatch(session_on, batch);
  const auto answers_off = off->AnswerBatch(session_off, batch);
  for (size_t q = 0; q < batch.size(); ++q) {
    if (!answers_on[q].ok() || !answers_off[q].ok()) {
      return Fail("bit-identity", "warm query " + std::to_string(q) +
                                      " not delivered");
    }
    const ServiceAnswer& a = *answers_on[q];
    const ServiceAnswer& b = *answers_off[q];
    const bool hist_match =
        a.histogram.has_value() == b.histogram.has_value() &&
        (!a.histogram.has_value() ||
         a.histogram->counts() == b.histogram->counts());
    if (a.count != b.count || !hist_match || a.generation != b.generation ||
        a.seq != b.seq || a.cache_hit != b.cache_hit) {
      return Fail("bit-identity",
                  "metrics-on answer diverges at query " + std::to_string(q));
    }
  }

  // Paired timing: each rep times both twins back to back, order
  // alternating; the gate reads the median of the per-pair ratios.
  volatile size_t sink = 0;
  const auto run_batch = [&](QueryService& service,
                             QueryService::SessionId session) {
    for (const auto& r : service.AnswerBatch(session, batch)) {
      sink += r.ok() ? 1 : 0;
    }
  };
  const auto time_batch = [&](QueryService& service,
                              QueryService::SessionId session) {
    const double t0 = NowSec();
    run_batch(service, session);
    return NowSec() - t0;
  };
  run_batch(*on, session_on);  // warmup beyond the check pass
  run_batch(*off, session_off);
  std::vector<double> ratios;
  ratios.reserve(static_cast<size_t>(reps));
  double best_on = 1e300, best_off = 1e300;
  for (int i = 0; i < reps; ++i) {
    double sec_on, sec_off;
    if (i % 2 == 0) {
      sec_off = time_batch(*off, session_off);
      sec_on = time_batch(*on, session_on);
    } else {
      sec_on = time_batch(*on, session_on);
      sec_off = time_batch(*off, session_off);
    }
    best_on = std::min(best_on, sec_on);
    best_off = std::min(best_off, sec_off);
    ratios.push_back(sec_on / sec_off);
  }
  const double overhead = bench::Median(ratios) - 1.0;
  const double qps_on = static_cast<double>(batch.size()) / best_on;
  const double qps_off = static_cast<double>(batch.size()) / best_off;

  // Per-query latency percentiles, one steady-state pass each.
  std::vector<double> lat_on, lat_off;
  for (const auto& r : on->AnswerBatch(session_on, batch)) {
    if (r.ok()) lat_on.push_back(r->server_duration_micros);
  }
  for (const auto& r : off->AnswerBatch(session_off, batch)) {
    if (r.ok()) lat_off.push_back(r->server_duration_micros);
  }
  const bench::LatencyStats stats_on =
      bench::SummarizeLatencies(std::move(lat_on));
  const bench::LatencyStats stats_off =
      bench::SummarizeLatencies(std::move(lat_off));

  TextTable text({"twin", "hot q/s", "p50 us", "p99 us", "traces"});
  text.AddRow({"metrics on", TextTable::FmtAuto(qps_on),
               TextTable::Fmt(stats_on.p50, 1), TextTable::Fmt(stats_on.p99, 1),
               std::to_string(on->trace_ring().pushed())});
  text.AddRow({"metrics off", TextTable::FmtAuto(qps_off),
               TextTable::Fmt(stats_off.p50, 1),
               TextTable::Fmt(stats_off.p99, 1),
               std::to_string(off->trace_ring().pushed())});
  std::printf("%s\n", text.ToString().c_str());
  std::printf("enabled overhead: %+.2f%% (gate %.1f%%)\n\n", 100.0 * overhead,
              100.0 * max_overhead);

  // ---- Coverage: the scrape surface names every subsystem. Arm a fault
  // point on a schedule that can never fire so fault.* has a row (after the
  // timing runs — an armed registry serializes hits on a mutex).
  FaultRegistry::Global().Arm("query/execute", {1ull << 60, 0, 1});
  run_batch(*on, session_on);
  const std::string json = on->DumpMetricsJson();
  FaultRegistry::Global().DisarmAll();
  for (const char* key :
       {"service.queries_delivered", "service.query_ns", "cache.hits",
        "pool.tasks_submitted", "pool.utilization", "ingest.batches",
        "budget.service_spent_eps", "budget.session.",
        "fault.query/execute.hits"}) {
    if (!Covers(json, key)) return Fail("coverage", std::string(key) +
                                                        " missing from "
                                                        "DumpMetricsJson");
  }
  if (on->trace_ring().pushed() == 0) {
    return Fail("coverage", "enabled twin pushed no traces");
  }
  if (off->trace_ring().pushed() != 0) {
    return Fail("coverage", "disabled twin pushed traces");
  }
  const obs::MetricsSnapshot off_snap = off->MetricsSnapshot();
  const obs::MetricsSnapshot::HistogramValue* off_query_ns =
      off_snap.FindHistogram("service.query_ns");
  if (off_query_ns == nullptr || off_query_ns->count != 0) {
    return Fail("coverage", "disabled twin recorded stage latencies");
  }

  // JSON artifact.
  const char* json_env = std::getenv("OSDP_BENCH_JSON");
  const std::string json_path =
      json_env ? json_env : "BENCH_obs_overhead.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"obs_overhead\",\n"
      "  \"hardware_concurrency\": %u,\n  \"rows\": %zu,\n"
      "  \"batch_queries\": %zu,\n  \"reps\": %d,\n"
      "  \"overhead\": %.6f,\n  \"gate\": %.6f,\n"
      "  \"hot_qps_on\": %.6g,\n  \"hot_qps_off\": %.6g,\n"
      "  \"on\": {\"p50_us\": %.3f, \"p95_us\": %.3f, \"p99_us\": %.3f, "
      "\"max_us\": %.3f},\n"
      "  \"off\": {\"p50_us\": %.3f, \"p95_us\": %.3f, \"p99_us\": %.3f, "
      "\"max_us\": %.3f}\n}\n",
      std::thread::hardware_concurrency(), rows, batch.size(), reps, overhead,
      max_overhead, qps_on, qps_off, stats_on.p50, stats_on.p95, stats_on.p99,
      stats_on.max, stats_off.p50, stats_off.p95, stats_off.p99,
      stats_off.max);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (max_overhead > 0.0 && overhead > max_overhead) {
    std::fprintf(stderr,
                 "OBS OVERHEAD REGRESSION: %.2f%% > %.1f%% gate — the "
                 "telemetry hot path grew\n",
                 100.0 * overhead, 100.0 * max_overhead);
    return 1;
  }
  return 0;
}
