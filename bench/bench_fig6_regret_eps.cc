// Figure 6: average regret for MRE across non-sensitive ratios, both
// policies pooled, at ε ∈ {1.0, 0.01}. Series: DAWAz, DAWA, OsdpLaplaceL1.
//
// Paper shape: low ε favours DAWAz; at ρx <= 0.25 DAWA beats the pure OSDP
// primitive OsdpLaplaceL1.

#include <cstdio>

#include "bench/bench_dpbench_common.h"

using namespace osdp;
using namespace osdp::bench;

int main() {
  auto suite = StandardSuite();
  auto inputs = BuildInputs();
  const int reps = Reps(3);
  const std::vector<std::string> shown = {"DAWAz", "DAWA", "OsdpLaplaceL1"};

  std::printf("=== Figure 6: average regret (MRE), both policies ===\n");
  std::printf("regret is vs the best of the 6-algorithm suite; avg over the\n"
              "7 datasets x 2 policies at each ratio\n\n");
  for (double eps : {1.0, 0.01}) {
    std::printf("--- eps = %g ---\n", eps);
    std::vector<std::pair<std::string, RegretFilter>> rows;
    rows.push_back({"Avg", RegretFilter{}});
    for (double rho : RatioGrid()) {
      RegretFilter f;
      f.rho = rho;
      rows.push_back({TextTable::Fmt(rho, 2), f});
    }
    PrintRegretTable(suite, inputs, rows, eps, ErrorMetric::kMRE, reps, shown);
    std::printf("\n");
  }
  std::printf("shape check: DAWA's regret rises as rho grows (it ignores the\n"
              "non-sensitive records); OsdpLaplaceL1 collapses below rho=0.25;\n"
              "DAWAz stays near the optimum throughout (paper Fig. 6).\n");
  return 0;
}
