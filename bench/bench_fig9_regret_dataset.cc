// Figure 9: regret for MRE per dataset (Close policy, ε = 1) at fixed
// ρx ∈ {0.99, 0.50}, datasets ordered by descending sparsity.
//
// Paper shape: ~25x regret gap on the sparsest dataset (Adult) at ρx=0.99 —
// the OSDP algorithms identify the zero bins exactly — narrowing as sparsity
// decreases; Nettrace (sorted) is the one dataset where DAWA recovers.

#include <cstdio>

#include "bench/bench_dpbench_common.h"

using namespace osdp;
using namespace osdp::bench;

int main() {
  auto suite = StandardSuite();
  auto inputs = BuildInputs(/*min_rho=*/0.5);
  const int reps = Reps(3);
  const std::vector<std::string> shown = {"OsdpLaplaceL1", "DAWAz", "DAWA"};
  const double eps = 1.0;

  // Descending sparsity, as in the figure's x-axis.
  const std::vector<std::string> datasets = {
      "Adult", "Nettrace", "Medcost", "Searchlogs", "Income", "Hepth",
      "Patent"};

  std::printf("=== Figure 9: regret (MRE), Close policy, eps=1 ===\n\n");
  for (double rho : {0.99, 0.50}) {
    std::printf("--- non-sensitive ratio rho_x = %.2f ---\n", rho);
    std::vector<std::pair<std::string, RegretFilter>> rows;
    {
      RegretFilter all;
      all.policy = "Close";
      all.rho = rho;
      rows.push_back({"All", all});
    }
    for (const std::string& ds : datasets) {
      RegretFilter f;
      f.dataset = ds;
      f.policy = "Close";
      f.rho = rho;
      rows.push_back({ds, f});
    }
    PrintRegretTable(suite, inputs, rows, eps, ErrorMetric::kMRE, reps, shown);
    std::printf("\n");
  }
  std::printf("shape check (paper Fig. 9): largest gap on sparse Adult at\n"
              "rho=0.99 (paper: ~25x); gap narrows with sparsity; sorted\n"
              "Nettrace is DAWA's best case; DAWAz gains as rho shrinks.\n");
  return 0;
}
