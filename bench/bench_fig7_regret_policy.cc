// Figure 7: average regret for MRE at ε = 1, split by policy generator
// (Close = MSampling, Far = HiLoSampling), ρx >= 0.25.
//
// Paper shape: under Close, OSDP algorithms dominate DP everywhere; under
// Far, the pure x_ns primitives suffer but DAWAz still beats DAWA.

#include <cstdio>

#include "bench/bench_dpbench_common.h"

using namespace osdp;
using namespace osdp::bench;

int main() {
  auto suite = StandardSuite();
  auto inputs = BuildInputs(/*min_rho=*/0.25);
  const int reps = Reps(3);
  const std::vector<std::string> shown = {"DAWAz", "OsdpLaplaceL1", "DAWA"};
  const double eps = 1.0;

  std::printf("=== Figure 7: average regret (MRE) per policy, eps=1 ===\n\n");
  for (const char* policy : {"Close", "Far"}) {
    std::printf("--- policy: %s ---\n", policy);
    std::vector<std::pair<std::string, RegretFilter>> rows;
    RegretFilter all;
    all.policy = policy;
    rows.push_back({"Avg", all});
    for (double rho : RatioGrid()) {
      if (rho < 0.25) continue;
      RegretFilter f;
      f.policy = policy;
      f.rho = rho;
      rows.push_back({TextTable::Fmt(rho, 2), f});
    }
    PrintRegretTable(suite, inputs, rows, eps, ErrorMetric::kMRE, reps, shown);
    std::printf("\n");
  }
  std::printf("shape check (paper Fig. 7a/7b): Close -> OSDP always ahead;\n"
              "Far -> DAWAz still outperforms DAWA at every ratio.\n");
  return 0;
}
