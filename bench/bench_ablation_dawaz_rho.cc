// Ablation: DAWAz's budget split ρ (Section 5.2 instantiation choice; the
// paper fixes ρ = 0.1). Sweeps the zero-detector budget and both detector
// choices across a sparse and a dense dataset.

#include <cstdio>

#include "bench/bench_dpbench_common.h"
#include "src/mech/dawaz.h"

using namespace osdp;
using namespace osdp::bench;

int main() {
  std::printf("=== ablation: DAWAz zero-detector budget ratio rho ===\n");
  std::printf("(paper uses rho = 0.1 with the OsdpRR detector)\n\n");

  const double eps = 1.0;
  const int reps = Reps(5);
  Rng data_rng(5);

  for (const char* name : {"Adult", "Patent"}) {
    BenchmarkDataset d = *MakeDPBenchDataset(name, 4096, 20200416);
    Histogram xns = *MSampling(d.hist, 0.9, MSamplingOptions{}, data_rng);
    std::printf("--- dataset %s (sparsity %.2f), Close policy, rho_x=0.9 ---\n",
                name, d.hist.Sparsity());
    TextTable table({"rho", "MRE (OsdpRR det.)", "MRE (OsdpLaplaceL1 det.)"});
    for (double rho : {0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
      double mre_rr = 0.0, mre_l1 = 0.0;
      Rng rng(77);
      for (int rep = 0; rep < reps; ++rep) {
        DawazOptions opts;
        opts.zero_budget_ratio = rho;
        opts.detector = DawazZeroDetector::kOsdpRR;
        mre_rr += MeanRelativeError(d.hist, *Dawaz(d.hist, xns, eps, opts, rng));
        opts.detector = DawazZeroDetector::kOsdpLaplaceL1;
        mre_l1 += MeanRelativeError(d.hist, *Dawaz(d.hist, xns, eps, opts, rng));
      }
      table.AddRow({TextTable::Fmt(rho, 2), TextTable::Fmt(mre_rr / reps, 4),
                    TextTable::Fmt(mre_l1 / reps, 4)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("=== ablation: the naive recipe (Section 5.2) ===\n");
  std::printf("DAWAns = DAWA run unchanged on x_ns; suffers when x and x_ns\n"
              "diverge (Far policy), which motivates the DAWAz design.\n\n");
  BenchmarkDataset d = *MakeDPBenchDataset("Searchlogs", 4096, 20200416);
  TextTable naive({"policy", "rho_x", "DAWAns MRE", "DAWAz MRE"});
  auto dawans = MakeDawaNsMechanism();
  auto dawaz = MakeDawazMechanism();
  for (const char* policy : {"Close", "Far"}) {
    for (double rho : {0.9, 0.5}) {
      Histogram xns(0);
      if (std::string(policy) == "Close") {
        xns = *MSampling(d.hist, rho, MSamplingOptions{}, data_rng);
      } else {
        xns = *HiLoSampling(d.hist, rho, HiLoSamplingOptions{}, data_rng);
      }
      Rng rng(11);
      double a = 0.0, b = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        a += MeanRelativeError(d.hist, *dawans->Run(d.hist, xns, eps, rng));
        b += MeanRelativeError(d.hist, *dawaz->Run(d.hist, xns, eps, rng));
      }
      naive.AddRow({policy, TextTable::Fmt(rho, 1), TextTable::Fmt(a / reps, 4),
                    TextTable::Fmt(b / reps, 4)});
    }
  }
  std::printf("%s", naive.ToString().c_str());
  return 0;
}
