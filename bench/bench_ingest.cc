// Streaming ingest benchmark: rows/sec through the snapshot-isolated write
// path, and reader throughput while the dataset moves underneath.
//
//   append        TableBuilder::Append alone (batch-proportional work:
//                 columnar concat + incremental policy classification), no
//                 snapshot cut — the marginal cost of accepting a batch.
//   ingest        QueryService::Ingest = append + BuildSnapshot + atomic
//                 publish. With chunked copy-on-write columns BuildSnapshot
//                 copies chunk *pointers* plus the O(rows/64) policy-mask
//                 words — publish cost is flat in the accumulated size, so
//                 ingest rows/sec should track append rows/sec at every
//                 batch size (the "publish overhead" column).
//   mixed         one writer thread ingesting batches while analyst
//                 sessions stream count queries: ingest rows/sec and
//                 queries/sec under contention.
//
// Cross-checks (any failure exits non-zero; the ctest smoke run relies on
// this):
//   * after every run, the final snapshot's non-sensitive mask must be
//     bit-identical to a from-scratch Policy::NonSensitiveRowMask over an
//     independently rebuilt table;
//   * every answer recorded during the mixed phase must be bit-identical to
//     a serial replay of its (generation, session, seq) — the same property
//     tests/query_service_test.cc pins, exercised here at bench scale;
//   * publish overhead (ingest_sec / append_sec) at the smallest batch size
//     must not exceed OSDP_BENCH_MAX_PUBLISH_OVERHEAD (default 1.5; "0"
//     disables) — the O(batch)-publish regression gate.
//
// Knobs: OSDP_BENCH_MAX_ROWS caps the ingested-row grid (default 1M; the CI
// smoke run uses 50000), OSDP_BENCH_THREADS the mixed-phase pool size
// (default 2), OSDP_BENCH_JSON the output path (default BENCH_ingest.json),
// OSDP_BENCH_MAX_PUBLISH_OVERHEAD the regression gate above.
// The JSON records hardware_concurrency so flat concurrency numbers on a
// starved machine read as what they are.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/benchdata/table_gen.h"
#include "src/common/distributions.h"
#include "src/common/random.h"
#include "src/core/engine.h"
#include "src/data/compiled_predicate.h"
#include "src/data/predicate.h"
#include "src/data/table_builder.h"
#include "src/eval/table_printer.h"
#include "src/policy/policy.h"
#include "src/runtime/query_service.h"
#include "src/runtime/thread_pool.h"

using namespace osdp;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Policy BenchPolicy() {
  return Policy::SensitiveWhen(
      Predicate::Or(Predicate::Eq("opt_in", Value(0)),
                    Predicate::Lt("age", Value(18))),
      "bench_policy");
}

Table CensusRows(size_t rows, uint64_t seed) {
  CensusTableOptions opts;
  opts.num_rows = rows;
  opts.seed = seed;
  return MakeCensusTable(opts);
}

constexpr size_t kSeedRows = 10000;
constexpr uint64_t kSeedSeed = 0x05D9;
constexpr uint64_t kRootSeed = 0x16E5;

OsdpEngine BenchEngine() {
  OsdpEngine::Options eopts;
  eopts.total_epsilon = 1e9;  // throughput bench, not a budget bench
  return *OsdpEngine::Create(CensusRows(kSeedRows, kSeedSeed), BenchPolicy(),
                             eopts);
}

int Fail(const char* what) {
  std::fprintf(stderr, "BIT-IDENTITY VIOLATION: %s\n", what);
  return 1;
}

struct Measurement {
  std::string op;
  size_t batch_rows = 0;
  size_t total_rows = 0;   // rows ingested during the measurement
  size_t generations = 0;  // snapshots published
  size_t queries = 0;      // mixed phase only
  double sec = 0.0;
  double rows_per_sec = 0.0;
  double queries_per_sec = 0.0;
  double publish_overhead = 0.0;  // ingest_sec / append_sec (ingest rows)
  bench::LatencyStats query_lat;  // mixed phase: per-query server durations
};

// Rebuilds the dataset as of `generation` from the deterministic batch
// stream and checks `snapshot` against a from-scratch classification.
bool SnapshotMatchesRebuild(const Snapshot& snapshot, size_t batch_rows,
                            uint64_t batch_seed_base) {
  Table rebuilt = CensusRows(kSeedRows, kSeedSeed);
  for (uint64_t g = 1; g <= snapshot.generation; ++g) {
    if (!rebuilt.AppendRows(CensusRows(batch_rows, batch_seed_base + g)).ok()) {
      return false;
    }
  }
  return rebuilt.num_rows() == snapshot.table.num_rows() &&
         BenchPolicy().NonSensitiveRowMask(rebuilt) == snapshot.non_sensitive;
}

}  // namespace

int main() {
  const char* max_rows_env = std::getenv("OSDP_BENCH_MAX_ROWS");
  const size_t max_rows =
      max_rows_env ? static_cast<size_t>(std::atoll(max_rows_env)) : 1000000;
  const char* threads_env = std::getenv("OSDP_BENCH_THREADS");
  const size_t mixed_threads =
      threads_env ? static_cast<size_t>(std::atoll(threads_env)) : 2;

  const double max_publish_overhead =
      bench::EnvGate("OSDP_BENCH_MAX_PUBLISH_OVERHEAD", 1.5);

  std::vector<Measurement> results;
  const Policy policy = BenchPolicy();

  std::printf("=== streaming ingest: rows/sec through the snapshot path ===\n");
  std::printf("(hardware_concurrency=%u; ingested rows capped at %zu)\n\n",
              std::thread::hardware_concurrency(), max_rows);

  // --- append / ingest, by batch size ----------------------------------
  TextTable text({"batch rows", "total rows", "append rows/s",
                  "ingest rows/s", "publish overhead"});
  bool overhead_checked = false;
  for (size_t batch_rows : {size_t{1000}, size_t{10000}, size_t{100000}}) {
    // Cap the generation count so the grid finishes quickly at small batch
    // sizes (publish itself is O(batch) now, not O(total)).
    const size_t total =
        std::min(max_rows, batch_rows * size_t{100});
    if (batch_rows > total) continue;
    const size_t batches = total / batch_rows;
    if (batches == 0) continue;

    // Pre-generate the batches: measure the ingest path, not the generator.
    std::vector<Table> batch_tables;
    batch_tables.reserve(batches);
    for (size_t g = 1; g <= batches; ++g) {
      batch_tables.push_back(CensusRows(batch_rows, 0xB000 + g));
    }

    // append: builder only, no snapshot cut.
    TableBuilder builder =
        *TableBuilder::Create(CensusRows(kSeedRows, kSeedSeed), policy);
    const double t0 = NowSec();
    for (const Table& batch : batch_tables) {
      if (!builder.Append(batch).ok()) return Fail("append status");
    }
    const double append_sec = NowSec() - t0;
    if (!SnapshotMatchesRebuild(*builder.BuildSnapshot(batches), batch_rows,
                                0xB000)) {
      return Fail("append-only incremental mask vs rebuild");
    }
    results.push_back({"append", batch_rows, batches * batch_rows, 0, 0,
                       append_sec,
                       static_cast<double>(batches * batch_rows) / append_sec,
                       0.0, 0.0, {}});

    // ingest: full QueryService path, one published snapshot per batch.
    auto service = *QueryService::Create(BenchEngine(), {});
    const double t1 = NowSec();
    for (const Table& batch : batch_tables) {
      if (!service->Ingest(batch).ok()) return Fail("ingest status");
    }
    const double ingest_sec = NowSec() - t1;
    if (service->current_generation() != batches) return Fail("generation");
    if (!SnapshotMatchesRebuild(*service->current_snapshot(), batch_rows,
                                0xB000)) {
      return Fail("published snapshot vs rebuild");
    }
    const double overhead = ingest_sec / append_sec;
    results.push_back({"ingest", batch_rows, batches * batch_rows, batches, 0,
                       ingest_sec,
                       static_cast<double>(batches * batch_rows) / ingest_sec,
                       0.0, overhead, {}});

    text.AddRow({std::to_string(batch_rows), std::to_string(total),
                 TextTable::FmtAuto(static_cast<double>(total) / append_sec),
                 TextTable::FmtAuto(static_cast<double>(total) / ingest_sec),
                 TextTable::Fmt(overhead, 1) + "x"});

    // The regression gate runs at the smallest (most publish-heavy) batch
    // size: before chunked columns this row sat at ~8x; O(batch) publish
    // keeps it near 1x.
    if (!overhead_checked && max_publish_overhead > 0.0 &&
        overhead > max_publish_overhead) {
      std::fprintf(stderr,
                   "PUBLISH-OVERHEAD REGRESSION: %.2fx at %zu-row batches "
                   "(limit %.2fx) — snapshot publish is no longer O(batch)\n",
                   overhead, batch_rows, max_publish_overhead);
      return 1;
    }
    overhead_checked = true;
  }
  std::printf("%s\n", text.ToString().c_str());

  // --- mixed: writer vs analyst sessions --------------------------------
  {
    constexpr size_t kMixedBatchRows = 5000;
    const size_t batches =
        std::max<size_t>(1, std::min(max_rows, size_t{100000}) /
                                kMixedBatchRows);
    constexpr int kSessions = 2;
    constexpr double kEps = 1e-4;

    ThreadPool pool(mixed_threads);
    QueryService::Options sopts;
    sopts.pool = &pool;
    sopts.per_session_epsilon = 1e8;
    sopts.seed = kRootSeed;
    auto service = *QueryService::Create(BenchEngine(), sopts);
    std::vector<QueryService::SessionId> sessions;
    for (int s = 0; s < kSessions; ++s) {
      sessions.push_back(service->OpenSession("s" + std::to_string(s)));
    }

    std::vector<Table> batch_tables;
    batch_tables.reserve(batches);
    for (size_t g = 1; g <= batches; ++g) {
      batch_tables.push_back(CensusRows(kMixedBatchRows, 0xC000 + g));
    }

    struct Recorded {
      uint64_t generation;
      double count;
    };
    std::vector<std::vector<Recorded>> recorded(kSessions);
    std::vector<std::vector<double>> latencies_us(kSessions);
    std::atomic<bool> done{false};

    const double t0 = NowSec();
    std::thread writer([&] {
      for (const Table& batch : batch_tables) {
        if (!service->Ingest(batch).ok()) std::abort();
      }
      done.store(true);
    });
    std::vector<std::thread> readers;
    for (int s = 0; s < kSessions; ++s) {
      readers.emplace_back([&, s] {
        int q = 0;
        while (!done.load() || q == 0) {  // at least one query each
          auto answer = service->AnswerCount(
              sessions[s],
              Predicate::Le("age", Value(10 + (7 * s + 13 * q) % 80)), kEps);
          if (!answer.ok()) std::abort();
          recorded[s].push_back({answer->generation, answer->count});
          latencies_us[s].push_back(answer->server_duration_micros);
          ++q;
        }
      });
    }
    writer.join();
    for (std::thread& t : readers) t.join();
    const double mixed_sec = NowSec() - t0;

    if (!SnapshotMatchesRebuild(*service->current_snapshot(), kMixedBatchRows,
                                0xC000)) {
      return Fail("mixed-phase snapshot vs rebuild");
    }

    // Serial replay of every recorded (generation, session, seq) answer.
    std::vector<Table> generations;
    generations.push_back(CensusRows(kSeedRows, kSeedSeed));
    for (size_t g = 1; g <= batches; ++g) {
      Table next = generations.back();
      if (!next.AppendRows(batch_tables[g - 1]).ok()) {
        return Fail("replay rebuild");
      }
      generations.push_back(std::move(next));
    }
    std::vector<RowMask> ns_masks;
    ns_masks.reserve(generations.size());
    for (const Table& t : generations) {
      ns_masks.push_back(policy.NonSensitiveRowMask(t));
    }
    size_t queries = 0;
    for (int s = 0; s < kSessions; ++s) {
      for (size_t q = 0; q < recorded[s].size(); ++q) {
        const Recorded& rec = recorded[s][q];
        const Table& table = generations[rec.generation];
        RowMask matching =
            CompiledPredicate::Compile(
                Predicate::Le("age",
                              Value(10 + (7 * s + 13 * static_cast<int>(q)) %
                                             80)),
                table.schema())
                ->EvalMask(table);
        matching.AndWith(ns_masks[rec.generation]);
        Rng rng(QueryService::QuerySeed(kRootSeed, sessions[s], q,
                                        rec.generation));
        const double expected = static_cast<double>(matching.Count()) +
                                SampleOneSidedLaplace(rng, 1.0 / kEps);
        if (rec.count != expected) return Fail("mixed-phase serial replay");
        ++queries;
      }
    }

    std::vector<double> all_latencies;
    for (const auto& per_session : latencies_us) {
      all_latencies.insert(all_latencies.end(), per_session.begin(),
                           per_session.end());
    }
    const bench::LatencyStats lat =
        bench::SummarizeLatencies(std::move(all_latencies));

    const size_t ingested = batches * kMixedBatchRows;
    results.push_back({"mixed", kMixedBatchRows, ingested, batches, queries,
                       mixed_sec, static_cast<double>(ingested) / mixed_sec,
                       static_cast<double>(queries) / mixed_sec, 0.0, lat});
    std::printf(
        "mixed (%zu pool threads): %zu rows over %zu generations + %zu "
        "queries from %d sessions in %.3gs (%.3g rows/s, %.3g q/s); all "
        "answers bit-identical to serial replay\n"
        "mixed query latency: p50 %.1f us, p95 %.1f us, p99 %.1f us, "
        "max %.1f us\n\n",
        mixed_threads, ingested, batches, queries, kSessions, mixed_sec,
        static_cast<double>(ingested) / mixed_sec,
        static_cast<double>(queries) / mixed_sec, lat.p50, lat.p95, lat.p99,
        lat.max);
  }

  // JSON artefact.
  const char* json_env = std::getenv("OSDP_BENCH_JSON");
  const std::string json_path = json_env ? json_env : "BENCH_ingest.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"ingest\",\n"
               "  \"hardware_concurrency\": %u,\n  \"results\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(
        f,
        "    {\"op\": \"%s\", \"batch_rows\": %zu, \"total_rows\": %zu, "
        "\"generations\": %zu, \"queries\": %zu, \"sec\": %.6g, "
        "\"rows_per_sec\": %.6g, \"queries_per_sec\": %.6g, "
        "\"publish_overhead\": %.6g, \"query_p50_us\": %.3f, "
        "\"query_p95_us\": %.3f, \"query_p99_us\": %.3f, "
        "\"query_max_us\": %.3f}%s\n",
        m.op.c_str(), m.batch_rows, m.total_rows, m.generations, m.queries,
        m.sec, m.rows_per_sec, m.queries_per_sec, m.publish_overhead,
        m.query_lat.p50, m.query_lat.p95, m.query_lat.p99, m.query_lat.max,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu measurements)\n", json_path.c_str(),
              results.size());
  return 0;
}
