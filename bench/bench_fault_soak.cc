// Fault-injection soak for the QueryService robustness layer
// (docs/robustness.md): every fault point in the catalog, round-robin —
// plus a fault-free baseline round — armed with repeating schedules while
// analyst threads hammer mixed batches (some carrying already-passed
// deadlines), a canceller fires a batch token mid-round, a writer ingests
// through both failure windows, and admission control sheds under the
// thread pressure.
//
// This is a *soak*, not a throughput bench: the numbers it prints (queries
// delivered / failed by class, injected fires, q/s) are diagnostics. What it
// certifies — exiting non-zero on any violation; the bench_fault_soak_smoke
// ctest target runs it on every test run — is the conservation contract:
//
//   * BUDGET LEAK: ε spent (service-wide and per session) must equal the
//     Σ ε of delivered answers exactly — every failure path refunded.
//   * LEDGER MISMATCH: exactly one composition-ledger entry per delivery.
//   * ADMISSION LEAK: admitted + rejected == batches submitted, and the
//     observed peak in-flight respects max_concurrent_batches.
//   * REPLAY DIVERGENCE (torn snapshot): every delivered answer against the
//     final published generation must be bit-identical to a serial
//     recomputation from that snapshot with the recorded (session, seq)
//     seed.
//
// And implicitly: the process survives every round — no injected fault,
// overload, deadline, or cancellation ever reaches std::terminate.
//
// Knobs: OSDP_BENCH_SOAK_ROUNDS (default 14 — two laps of the 7-entry
// schedule), OSDP_BENCH_MAX_ROWS (seed table rows, default 20000),
// OSDP_BENCH_SOAK_READERS (analyst threads, default 4), OSDP_BENCH_JSON
// (artifact path, default BENCH_fault_soak.json).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/benchdata/table_gen.h"
#include "src/common/cancel.h"
#include "src/common/distributions.h"
#include "src/common/fault.h"
#include "src/common/random.h"
#include "src/core/engine.h"
#include "src/data/compiled_predicate.h"
#include "src/data/predicate.h"
#include "src/eval/table_printer.h"
#include "src/hist/histogram_query.h"
#include "src/policy/policy.h"
#include "src/runtime/query_service.h"
#include "src/runtime/thread_pool.h"

using namespace osdp;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Policy BenchPolicy() {
  return Policy::SensitiveWhen(
      Predicate::Or(Predicate::Eq("opt_in", Value(0)),
                    Predicate::Lt("age", Value(18))),
      "bench_policy");
}

// The fault catalog (docs/robustness.md), round-robin; nullptr = baseline
// round with the registry quiet.
struct FaultSpec {
  const char* point;  // nullptr = no fault this round
  FaultRegistry::Schedule schedule;
};

constexpr FaultSpec kFaultSchedule[] = {
    {nullptr, {}},
    {"mask_cache/insert", {2, 3, 6}},
    {"mechanism/run", {1, 2, 8}},
    {"query/execute", {3, 5, 6}},
    {"thread_pool/chunk", {7, 11, 4}},
    {"ingest/append", {1, 2, 2}},
    {"ingest/publish", {2, 2, 2}},
};
constexpr size_t kFaultScheduleSize =
    sizeof(kFaultSchedule) / sizeof(kFaultSchedule[0]);

struct RoundStats {
  const char* fault = "none";
  size_t submitted = 0;
  size_t delivered = 0;
  size_t rejected = 0;
  size_t deadline = 0;
  size_t cancelled = 0;
  size_t injected = 0;
  uint64_t fires = 0;
  size_t replayed = 0;
  double seconds = 0.0;
  bench::LatencyStats lat;  // delivered-query server durations (us)
};

int g_violations = 0;

void Violation(const char* what, size_t round, const std::string& detail) {
  std::fprintf(stderr, "%s (round %zu, fault %s): %s\n", what, round,
               kFaultSchedule[round % kFaultScheduleSize].point == nullptr
                   ? "none"
                   : kFaultSchedule[round % kFaultScheduleSize].point,
               detail.c_str());
  ++g_violations;
}

}  // namespace

int main() {
  const char* rounds_env = std::getenv("OSDP_BENCH_SOAK_ROUNDS");
  const size_t rounds =
      rounds_env ? static_cast<size_t>(std::atoll(rounds_env)) : 14;
  const char* rows_env = std::getenv("OSDP_BENCH_MAX_ROWS");
  const size_t seed_rows =
      rows_env ? static_cast<size_t>(std::atoll(rows_env)) : 20000;
  const char* readers_env = std::getenv("OSDP_BENCH_SOAK_READERS");
  const int num_readers =
      readers_env ? static_cast<int>(std::atoll(readers_env)) : 4;

  constexpr int kBatchesPerReader = 10;
  constexpr size_t kQueriesPerBatch = 2;
  constexpr int kIngests = 6;
  constexpr size_t kIngestRows = 97;
  constexpr double kEps = 0.001;
  constexpr uint64_t kRootSeed = 0x50AC;
  const Domain1D age_domain = *Domain1D::Numeric(0, 100, 16);
  const Policy policy = BenchPolicy();

  std::printf("=== fault soak: %zu rounds, %d readers, %zu seed rows ===\n\n",
              rounds, num_readers, seed_rows);

  const auto make_query = [&](int s, int q) -> ServiceRequest {
    if ((s + q) % 4 == 3) {
      std::optional<Predicate> where;
      if ((s + q) % 8 == 7) where = Predicate::Eq("opt_in", Value(1));
      return HistogramRequest{HistogramQuery{"age", age_domain, where}, kEps,
                              EngineMechanism::kOsdpLaplaceL1};
    }
    CountRequest count{
        Predicate::Le("age", Value(10 + (7 * s + 13 * q) % 80)), kEps};
    if (q % 5 == 4) {
      count.deadline =
          std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    }
    return count;
  };
  const auto make_ingest_batch = [&](size_t round, int g) {
    CensusTableOptions opts;
    opts.num_rows = kIngestRows;
    opts.seed = 0xC0DE + (round << 8) + static_cast<uint64_t>(g);
    return MakeCensusTable(opts);
  };

  std::vector<RoundStats> stats;
  for (size_t round = 0; round < rounds; ++round) {
    const FaultSpec& spec = kFaultSchedule[round % kFaultScheduleSize];
    RoundStats rs;
    rs.fault = spec.point == nullptr ? "none" : spec.point;

    CensusTableOptions topts;
    topts.num_rows = seed_rows;
    topts.seed = 0x9A;
    OsdpEngine::Options eopts;
    eopts.total_epsilon = 1e6;
    ThreadPool pool(2);
    QueryService::Options sopts;
    sopts.pool = &pool;
    sopts.per_session_epsilon = 1e5;
    sopts.seed = kRootSeed + round;
    sopts.max_concurrent_batches = 2;
    auto service = *QueryService::Create(
        *OsdpEngine::Create(MakeCensusTable(topts), policy, eopts), sopts);
    const double service_total = service->remaining_budget();

    std::vector<QueryService::SessionId> sessions;
    for (int s = 0; s < num_readers; ++s) {
      sessions.push_back(service->OpenSession("soak-" + std::to_string(s)));
    }

    struct Delivered {
      uint64_t generation = 0;
      uint64_t seq = 0;
      bool is_histogram = false;
      double count = 0.0;
      std::vector<double> bins;
      int s = 0;
      int q = 0;
    };
    std::vector<std::vector<Delivered>> delivered(num_readers);
    std::vector<std::vector<double>> delivered_us(num_readers);
    std::vector<double> delivered_eps(num_readers, 0.0);
    std::atomic<size_t> rejected{0}, deadline{0}, cancelled{0}, injected{0};
    std::atomic<bool> unclassified_failure{false};

    if (spec.point != nullptr) {
      FaultRegistry::Global().Arm(spec.point, spec.schedule);
    }
    CancelToken round_token;
    const double t0 = NowSec();

    std::thread writer([&] {
      for (int g = 0; g < kIngests; ++g) {
        auto result = service->Ingest(make_ingest_batch(round, g));
        if (!result.ok() &&
            result.status().message().find("injected fault") ==
                std::string::npos) {
          unclassified_failure.store(true);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(700));
      round_token.Cancel();
    });
    std::vector<std::thread> reader_threads;
    for (int s = 0; s < num_readers; ++s) {
      reader_threads.emplace_back([&, s] {
        for (int b = 0; b < kBatchesPerReader; ++b) {
          std::vector<ServiceRequest> batch;
          std::vector<int> qids;
          for (size_t k = 0; k < kQueriesPerBatch; ++k) {
            const int q = b * static_cast<int>(kQueriesPerBatch) +
                          static_cast<int>(k);
            batch.push_back(make_query(s, q));
            qids.push_back(q);
          }
          QueryService::BatchControl control;
          if (b % 3 == 2) control.cancel = round_token;
          const auto results =
              service->AnswerBatch(sessions[s], batch, control);
          for (size_t k = 0; k < results.size(); ++k) {
            const auto& r = results[k];
            if (!r.ok()) {
              switch (r.status().code()) {
                case StatusCode::kResourceExhausted:
                  rejected.fetch_add(1);
                  break;
                case StatusCode::kDeadlineExceeded:
                  deadline.fetch_add(1);
                  break;
                case StatusCode::kCancelled:
                  cancelled.fetch_add(1);
                  break;
                case StatusCode::kInternal:
                  injected.fetch_add(1);
                  break;
                default:
                  unclassified_failure.store(true);
              }
              continue;
            }
            Delivered d;
            d.generation = r->generation;
            d.seq = r->seq;
            d.s = s;
            d.q = qids[k];
            if (r->histogram.has_value()) {
              d.is_histogram = true;
              d.bins = r->histogram->counts();
            } else {
              d.count = r->count;
            }
            delivered[s].push_back(std::move(d));
            delivered_us[s].push_back(r->server_duration_micros);
            delivered_eps[s] += kEps;
          }
        }
      });
    }
    writer.join();
    canceller.join();
    for (std::thread& t : reader_threads) t.join();
    if (spec.point != nullptr) {
      rs.fires = FaultRegistry::Global().fires(spec.point);
    }
    FaultRegistry::Global().DisarmAll();

    // Quiescent tail: guaranteed deliveries against the final generation so
    // the replay leg below always has coverage. (100 + 5s dodges the
    // make_query deadline branch.)
    for (int s = 0; s < num_readers; ++s) {
      const int q = 100 + 5 * s;
      std::vector<ServiceRequest> tail;
      tail.push_back(make_query(s, q));
      auto result = std::move(service->AnswerBatch(sessions[s], tail)[0]);
      if (!result.ok()) {
        Violation("QUIESCENT TAIL FAILED", round, result.status().ToString());
        continue;
      }
      Delivered d;
      d.generation = result->generation;
      d.seq = result->seq;
      d.s = s;
      d.q = q;
      if (result->histogram.has_value()) {
        d.is_histogram = true;
        d.bins = result->histogram->counts();
      } else {
        d.count = result->count;
      }
      delivered[s].push_back(std::move(d));
      delivered_us[s].push_back(result->server_duration_micros);
      delivered_eps[s] += kEps;
    }
    rs.seconds = NowSec() - t0;

    if (unclassified_failure.load()) {
      Violation("UNCLASSIFIED FAILURE", round,
                "a slot failed with an unexpected status code");
    }

    // ---- Invariant: exact ε conservation, per session and service-wide.
    double total_delivered_eps = 0.0;
    size_t total_delivered = 0;
    for (int s = 0; s < num_readers; ++s) {
      total_delivered_eps += delivered_eps[s];
      total_delivered += delivered[s].size();
      const double spent =
          sopts.per_session_epsilon - *service->session_remaining(sessions[s]);
      if (std::abs(spent - delivered_eps[s]) > 1e-9) {
        Violation("BUDGET LEAK", round,
                  "session " + std::to_string(s) + " spent " +
                      std::to_string(spent) + " != delivered " +
                      std::to_string(delivered_eps[s]));
      }
    }
    const double service_spent = service_total - service->remaining_budget();
    if (std::abs(service_spent - total_delivered_eps) > 1e-9) {
      Violation("BUDGET LEAK", round,
                "service spent " + std::to_string(service_spent) +
                    " != delivered " + std::to_string(total_delivered_eps));
    }

    // ---- Invariant: the ledger records exactly the deliveries.
    if (service->ledger().size() != total_delivered) {
      Violation("LEDGER MISMATCH", round,
                std::to_string(service->ledger().size()) + " entries vs " +
                    std::to_string(total_delivered) + " deliveries");
    }

    // ---- Invariant: admission accounting closes.
    const QueryService::AdmissionStats admission = service->admission_stats();
    const uint64_t submitted_batches = static_cast<uint64_t>(
        num_readers * kBatchesPerReader + num_readers);
    if (admission.admitted + admission.rejected != submitted_batches) {
      Violation("ADMISSION LEAK", round,
                std::to_string(admission.admitted) + " admitted + " +
                    std::to_string(admission.rejected) + " rejected != " +
                    std::to_string(submitted_batches) + " submitted");
    }
    if (admission.peak_inflight > sopts.max_concurrent_batches) {
      Violation("ADMISSION LEAK", round,
                "peak_inflight " + std::to_string(admission.peak_inflight) +
                    " exceeds cap");
    }

    // ---- Invariant: no torn snapshot — replay every delivery against the
    // final published generation bit-for-bit from the immutable snapshot.
    CensusTableOptions replay_topts;
    replay_topts.num_rows = 10;  // only RunMechanism is used, not the data
    OsdpEngine replay_engine = *OsdpEngine::Create(
        MakeCensusTable(replay_topts), policy, OsdpEngine::Options{});
    const SnapshotPtr current = service->current_snapshot();
    for (int s = 0; s < num_readers; ++s) {
      for (const Delivered& d : delivered[s]) {
        if (d.generation != current->generation) continue;
        ++rs.replayed;
        Rng rng(QueryService::QuerySeed(sopts.seed, sessions[s], d.seq,
                                        d.generation));
        const ServiceRequest request = make_query(d.s, d.q);
        if (d.is_histogram) {
          const auto& hist = std::get<HistogramRequest>(request);
          const Histogram xns = *ComputeHistogramMasked(
              current->table, hist.query, current->non_sensitive);
          const Histogram x(hist.query.domain.size());
          const Histogram expected = *replay_engine.RunMechanism(
              x, xns, kEps, hist.mechanism, rng);
          if (d.bins != expected.counts()) {
            Violation("REPLAY DIVERGENCE", round,
                      "histogram session " + std::to_string(s) + " seq " +
                          std::to_string(d.seq));
          }
        } else {
          const auto& count = std::get<CountRequest>(request);
          RowMask matching =
              CompiledPredicate::Compile(count.where, current->table.schema())
                  ->EvalMask(current->table);
          matching.AndWith(current->non_sensitive);
          const double expected =
              static_cast<double>(matching.Count()) +
              SampleOneSidedLaplace(rng, 1.0 / kEps);
          if (d.count != expected) {
            Violation("REPLAY DIVERGENCE", round,
                      "count session " + std::to_string(s) + " seq " +
                          std::to_string(d.seq));
          }
        }
      }
    }
    if (rs.replayed < static_cast<size_t>(num_readers)) {
      Violation("REPLAY DIVERGENCE", round, "replay leg went dead");
    }

    rs.submitted = static_cast<size_t>(num_readers) *
                       (kBatchesPerReader * kQueriesPerBatch) +
                   static_cast<size_t>(num_readers);
    rs.delivered = total_delivered;
    rs.rejected = rejected.load();
    rs.deadline = deadline.load();
    rs.cancelled = cancelled.load();
    rs.injected = injected.load();
    std::vector<double> round_latencies;
    for (const auto& per_reader : delivered_us) {
      round_latencies.insert(round_latencies.end(), per_reader.begin(),
                             per_reader.end());
    }
    rs.lat = bench::SummarizeLatencies(std::move(round_latencies));
    stats.push_back(rs);
  }

  TextTable text({"round", "fault", "submitted", "delivered", "shed",
                  "deadline", "cancelled", "injected", "fires", "replayed",
                  "q/s", "p50 us", "p99 us"});
  for (size_t i = 0; i < stats.size(); ++i) {
    const RoundStats& rs = stats[i];
    text.AddRow({std::to_string(i), rs.fault, std::to_string(rs.submitted),
                 std::to_string(rs.delivered), std::to_string(rs.rejected),
                 std::to_string(rs.deadline), std::to_string(rs.cancelled),
                 std::to_string(rs.injected), std::to_string(rs.fires),
                 std::to_string(rs.replayed),
                 TextTable::FmtAuto(static_cast<double>(rs.submitted) /
                                    rs.seconds),
                 TextTable::Fmt(rs.lat.p50, 1), TextTable::Fmt(rs.lat.p99, 1)});
  }
  std::printf("%s\n", text.ToString().c_str());

  const char* json_env = std::getenv("OSDP_BENCH_JSON");
  const std::string json_path = json_env ? json_env : "BENCH_fault_soak.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fault_soak\",\n"
               "  \"hardware_concurrency\": %u,\n  \"violations\": %d,\n"
               "  \"rounds\": [\n",
               std::thread::hardware_concurrency(), g_violations);
  for (size_t i = 0; i < stats.size(); ++i) {
    const RoundStats& rs = stats[i];
    std::fprintf(
        f,
        "    {\"round\": %zu, \"fault\": \"%s\", \"submitted\": %zu, "
        "\"delivered\": %zu, \"shed\": %zu, \"deadline\": %zu, "
        "\"cancelled\": %zu, \"injected\": %zu, \"fires\": %llu, "
        "\"replayed\": %zu, \"seconds\": %.6f, \"query_p50_us\": %.3f, "
        "\"query_p95_us\": %.3f, \"query_p99_us\": %.3f, "
        "\"query_max_us\": %.3f}%s\n",
        i, rs.fault, rs.submitted, rs.delivered, rs.rejected, rs.deadline,
        rs.cancelled, rs.injected, static_cast<unsigned long long>(rs.fires),
        rs.replayed, rs.seconds, rs.lat.p50, rs.lat.p95, rs.lat.p99,
        rs.lat.max, i + 1 < stats.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  if (g_violations > 0) {
    std::fprintf(stderr, "\nFAULT SOAK FAILED: %d invariant violation(s)\n",
                 g_violations);
    return 1;
  }
  std::printf("wrote %s (%zu rounds); all invariants held\n",
              json_path.c_str(), stats.size());
  return 0;
}
