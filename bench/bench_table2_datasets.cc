// Table 2: the histogram benchmark characteristics — verifies the synthetic
// DPBench-1D substitutes match the published sparsity and scale per dataset.

#include <cstdio>

#include "src/benchdata/dpbench.h"
#include "src/eval/table_printer.h"

using namespace osdp;

int main() {
  std::printf("=== Table 2: histogram benchmark (synthetic substitutes) ===\n");
  TextTable table({"dataset", "sparsity (paper)", "sparsity (ours)",
                   "scale (paper)", "scale (ours)", "nonzero bins"});
  for (const BenchmarkDataset& d : MakeDPBench1D()) {
    table.AddRow({d.name, TextTable::Fmt(d.target_sparsity, 2),
                  TextTable::Fmt(d.hist.Sparsity(), 4),
                  TextTable::FmtAuto(d.target_scale),
                  TextTable::FmtAuto(d.hist.Total()),
                  std::to_string(d.hist.size() - d.hist.ZeroBins())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nscale matches exactly; sparsity matches to the rounding of\n"
              "sparsity*4096 to whole bins (see DESIGN.md substitutions).\n");
  return 0;
}
