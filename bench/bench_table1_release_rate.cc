// Table 1: percentage of released non-sensitive records by OsdpRR vs ε.
//
// Reproduces the paper's row (ε = 1.0 / 0.5 / 0.1 → ~63% / ~39% / ~9.5%)
// analytically and empirically, plus a finer sweep.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/eval/table_printer.h"
#include "src/hist/histogram.h"
#include "src/mech/osdp_rr.h"

using namespace osdp;

int main() {
  std::printf("=== Table 1: %% of released non-sensitive records vs eps ===\n");
  std::printf("paper: eps 1.0 -> ~63%%, 0.5 -> ~39%%, 0.1 -> ~9.5%%\n\n");

  Rng rng(1);
  Histogram xns(std::vector<double>(1, 1e6));  // 1M non-sensitive records

  TextTable table({"epsilon", "analytic 1-e^-eps", "empirical (1M records)"});
  for (double eps : {1.0, 0.5, 0.25, 0.1, 0.05, 0.01}) {
    const double analytic = OsdpRRReleaseProbability(eps);
    Histogram sample = *OsdpRRHistogram(xns, eps, rng);
    const double empirical = sample[0] / xns[0];
    table.AddRow({TextTable::Fmt(eps, 2),
                  TextTable::Fmt(100 * analytic, 2) + "%",
                  TextTable::Fmt(100 * empirical, 2) + "%"});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
