// Shared driver for the Figure 2 (4-gram) and Figure 3 (5-gram) benches.

#ifndef OSDP_BENCH_BENCH_NGRAM_COMMON_H_
#define OSDP_BENCH_BENCH_NGRAM_COMMON_H_

#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/eval/table_printer.h"
#include "src/mech/osdp_rr.h"
#include "src/traj/ngram.h"

namespace osdp {
namespace bench {

/// Runs the Figure 2/3 experiment for n-grams of length `n`: MRE of
/// All NS, OsdpRR, LM T1, and LM T* across the policy grid at ε ∈ {1, 0.01}.
inline int RunNgramFigure(int n, const char* figure_name) {
  const TrajectoryDataset& sim = Tippers();
  NGramOptions nopts;
  nopts.n = n;
  nopts.alphabet = sim.config.num_aps;

  SparseHistogram truth = *NGramDistinctUsers(sim.trajectories, nopts);
  std::printf("=== %s: MRE of %d-gram distinct-user counts ===\n", figure_name,
              n);
  std::printf("domain 64^%d = %.3g cells; %zu carry true mass\n\n", n,
              truth.domain_size(), truth.num_materialized());

  const std::vector<int> truncation_grid = {1, 2, 4, 8};
  const int reps = Reps(3);

  for (double eps : {1.0, 0.01}) {
    std::printf("--- eps = %g ---\n", eps);

    // The LM baselines are policy-independent: compute once per eps. Two
    // views: MRE over the true support (the per-policy bars of Figures 2/3)
    // and the full-domain MRE where the 64^n zero cells contribute their
    // analytic E|Lap(2k/eps)| each (the paper's zero-count accounting).
    double lm_t1_sup = 0.0, lm_t1_dom = 0.0;
    double lm_ts_sup = 1e300, lm_ts_dom = 1e300;
    int best_k = 1;
    {
      Rng rng(500 + n);
      for (int k : truncation_grid) {
        double sup = 0.0, dom = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
          SparseHistogram trunc =
              *TruncatedNGramDistinctUsers(sim.trajectories, nopts, k, rng);
          SparseHistogram noisy = *NGramLaplace(trunc, k, eps, rng);
          sup += SparseSupportMeanRelativeError(truth, noisy);
          dom += SparseMeanRelativeError(truth, noisy,
                                         NGramLaplaceZeroCellError(k, eps));
        }
        sup /= reps;
        dom /= reps;
        if (k == 1) {
          lm_t1_sup = sup;
          lm_t1_dom = dom;
        }
        if (sup < lm_ts_sup) {
          lm_ts_sup = sup;
          lm_ts_dom = dom;
          best_k = k;
        }
      }
    }

    TextTable table({"policy", "All NS", "OsdpRR", "LM T1", "LM T*"});
    for (size_t pi = 0; pi < PolicyGrid().size(); ++pi) {
      const ApSetPolicy& ap_policy = TippersPolicies()[pi];
      auto policy = ap_policy.AsPolicy(PolicyGrid()[pi].label);
      Rng rng(700 + pi * 13 + n);

      std::vector<Trajectory> all_ns;
      for (const Trajectory& t : sim.trajectories) {
        if (!ap_policy.IsSensitive(t)) all_ns.push_back(t);
      }
      SparseHistogram ns_est = *NGramDistinctUsers(all_ns, nopts);
      const double all_ns_mre = SparseSupportMeanRelativeError(truth, ns_est);

      double rr_mre = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        std::vector<Trajectory> sample;
        for (size_t i :
             OsdpRRSelectGeneric(sim.trajectories, policy, eps, rng)) {
          sample.push_back(sim.trajectories[i]);
        }
        SparseHistogram rr_est = *NGramDistinctUsers(sample, nopts);
        rr_mre += SparseSupportMeanRelativeError(truth, rr_est);
      }
      rr_mre /= reps;

      table.AddRow({PolicyGrid()[pi].label, TextTable::FmtAuto(all_ns_mre),
                    TextTable::FmtAuto(rr_mre), TextTable::FmtAuto(lm_t1_sup),
                    TextTable::FmtAuto(lm_ts_sup)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("(support-restricted MRE; LM T* used k = %d)\n", best_k);
    std::printf("full-domain MRE incl. analytic zero cells: All NS/OsdpRR "
                "report exact zeros there;\n  LM T1 = %s, LM T* = %s "
                "(~2k/eps, every one of %.3g cells pays E|Lap|)\n\n",
                TextTable::FmtAuto(lm_t1_dom).c_str(),
                TextTable::FmtAuto(lm_ts_dom).c_str(), truth.domain_size());
  }
  std::printf("shape check: OsdpRR close to All NS, degrading as the\n"
              "non-sensitive share shrinks; LM is comparable at eps=1 but an\n"
              "order of magnitude (or more) worse at eps=0.01, and its\n"
              "full-domain error is catastrophic (paper Figures 2/3).\n");
  return 0;
}

}  // namespace bench
}  // namespace osdp

#endif  // OSDP_BENCH_BENCH_NGRAM_COMMON_H_
