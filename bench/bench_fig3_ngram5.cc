// Figure 3: mean relative error of 5-gram release across policies and ε.

#include "bench/bench_ngram_common.h"

int main() { return osdp::bench::RunNgramFigure(5, "Figure 3"); }
