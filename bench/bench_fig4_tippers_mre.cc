// Figure 4: mean relative error on the TIPPERS AP x hour histogram across
// the policy grid, at ε ∈ {1.0, 0.01}.
//
// Series: OsdpLaplaceL1 (hybrid form — the policy is value-based, so bins of
// sensitive APs publicly get two-sided noise and the rest one-sided, per
// Section 6.3.3.1), DAWAz, and DAWA. Paper shape: OSDP wins above ~25%
// non-sensitive; DP wins below; DAWAz is robust at ε = 0.01.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/eval/table_printer.h"
#include "src/mech/agrid.h"
#include "src/mech/dawa.h"
#include "src/mech/dawaz.h"
#include "src/mech/osdp_laplace.h"
#include "src/mech/recipe.h"
#include "src/traj/ap_hour_histogram.h"

using namespace osdp;
using bench::PolicyGrid;
using bench::Reps;
using bench::Tippers;
using bench::TippersPolicies;

int main() {
  const TrajectoryDataset& sim = Tippers();
  ApHourOptions hopts;
  hopts.num_aps = sim.config.num_aps;
  hopts.slots_per_day = sim.config.slots_per_day;
  Histogram2D full2d = *ApHourDistinctUsers(sim.trajectories, hopts);
  const Histogram& x = full2d.flat();

  std::printf("=== Figure 4: MRE on the TIPPERS AP x hour histogram ===\n");
  std::printf("histogram: %d APs x %d hours = %zu bins, total %.0f\n\n",
              hopts.num_aps, hopts.hours, x.size(), x.Total());

  AGridOptions agrid_opts;
  agrid_opts.rows = static_cast<size_t>(hopts.num_aps);
  agrid_opts.cols = static_cast<size_t>(hopts.hours);
  auto agrid = MakeAGridTwoPhase(agrid_opts);

  const int reps = Reps(5);
  for (double eps : {1.0, 0.01}) {
    std::printf("--- eps = %g ---\n", eps);
    TextTable table({"policy", "achieved ns", "OsdpLaplaceL1", "DAWAz",
                     "DAWA", "AGrid", "AGridz"});
    for (size_t pi = 0; pi < PolicyGrid().size(); ++pi) {
      const ApSetPolicy& ap_policy = TippersPolicies()[pi];

      std::vector<Trajectory> ns_trajs;
      for (const Trajectory& t : sim.trajectories) {
        if (!ap_policy.IsSensitive(t)) ns_trajs.push_back(t);
      }
      Histogram2D ns2d = *ApHourDistinctUsers(ns_trajs, hopts);
      const Histogram& xns = ns2d.flat();
      const std::vector<bool> bin_sens =
          ap_policy.ApHourBinSensitivity(static_cast<size_t>(hopts.hours));

      Rng rng(42 + pi);
      double l1 = 0.0, dz = 0.0, dw = 0.0, ag = 0.0, agz = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        l1 += MeanRelativeError(
            x, *OsdpLaplaceL1Hybrid(x, xns, bin_sens, eps, rng));
        dz += MeanRelativeError(x, *Dawaz(x, xns, eps, rng));
        dw += MeanRelativeError(x, Dawa(x, eps, rng)->estimate);
        ag += MeanRelativeError(x, agrid->Run(x, eps, rng)->estimate);
        agz += MeanRelativeError(
            x, *ApplyOsdpRecipe(*agrid, x, xns, eps, RecipeOptions{}, rng));
      }
      table.AddRow({PolicyGrid()[pi].label,
                    TextTable::Fmt(
                        ap_policy.NonSensitiveFraction(sim.trajectories), 3),
                    TextTable::Fmt(l1 / reps, 3), TextTable::Fmt(dz / reps, 3),
                    TextTable::Fmt(dw / reps, 3), TextTable::Fmt(ag / reps, 3),
                    TextTable::Fmt(agz / reps, 3)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("shape check: OSDP algorithms win for >=25%% non-sensitive;\n"
              "DAWA is preferable below; DAWAz stays competitive at low eps\n"
              "by over-reporting zero bins (paper Fig. 4b discussion).\n");
  return 0;
}
