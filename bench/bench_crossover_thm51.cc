// Theorem 5.1 crossover: OsdpRR's histogram error exceeds the Laplace
// mechanism's exactly when n·ε > 2d·e^ε. This bench traces the frontier
// empirically across (n, d, ε), comparing measured L1 error with the
// analytic predictions from Section 5.1.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/eval/table_printer.h"
#include "src/mech/laplace.h"
#include "src/mech/osdp_rr.h"

using namespace osdp;

int main() {
  std::printf("=== Theorem 5.1: OsdpRR vs Laplace L1-error crossover ===\n");
  std::printf("Laplace wins iff n*eps > 2d*e^eps (all records non-sensitive,\n"
              "uniform histogram — OsdpRR's best case)\n\n");

  Rng rng(31);
  const int reps = bench::Reps(5);
  TextTable table({"n", "d", "eps", "n*eps", "2d*e^eps", "L1 OsdpRR",
                   "L1 Laplace", "winner", "thm 5.1 says"});
  struct Case {
    double n;
    size_t d;
    double eps;
  };
  const Case cases[] = {
      {1e3, 1024, 0.1},  {1e4, 1024, 0.1},  {1e5, 1024, 0.1},
      {1e6, 1024, 0.1},  {1e3, 1024, 1.0},  {1e4, 1024, 1.0},
      {1e5, 1024, 1.0},  {2.2e5, 10000, 0.1},  // the paper's worked example
      {1e6, 16, 1.0},    {100, 512, 1.0},
  };
  for (const Case& c : cases) {
    Histogram x(c.d);
    for (size_t i = 0; i < c.d; ++i) x[i] = c.n / static_cast<double>(c.d);
    double rr = 0.0, lap = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      rr += L1Error(x, *OsdpRRHistogram(x, c.eps, rng));
      lap += L1Error(x, *LaplaceMechanism(x, c.eps, rng));
    }
    rr /= reps;
    lap /= reps;
    const double lhs = c.n * c.eps;
    const double rhs = 2.0 * static_cast<double>(c.d) * std::exp(c.eps);
    table.AddRow({TextTable::FmtAuto(c.n), std::to_string(c.d),
                  TextTable::Fmt(c.eps, 2), TextTable::FmtAuto(lhs),
                  TextTable::FmtAuto(rhs), TextTable::FmtAuto(rr),
                  TextTable::FmtAuto(lap), rr < lap ? "OsdpRR" : "Laplace",
                  lhs > rhs ? "Laplace" : "OsdpRR"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nanalytic error models: OsdpRR >= n*e^-eps;"
              " Laplace = 2d/eps.\n");
  return 0;
}
