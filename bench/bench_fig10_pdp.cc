// Figure 10: comparison with the PDP Suppress algorithm at τ ∈ {10, 100}
// vs OsdpLaplaceL1, regret of MRE at ε = 1 across non-sensitive ratios.
//
// Paper shape: Suppress becomes competitive only around τ >= 100 — i.e. by
// accepting 100x weaker exclusion-attack protection (Theorems 3.1 vs 3.4).

#include <cstdio>

#include "bench/bench_dpbench_common.h"
#include "src/mech/suppress.h"

using namespace osdp;
using namespace osdp::bench;

int main() {
  // The regret reference suite: the paper's 6 algorithms plus the two
  // Suppress variants under comparison.
  auto suite = StandardSuite();
  suite.push_back(MakeSuppressMechanism(10.0));
  suite.push_back(MakeSuppressMechanism(100.0));

  auto inputs = BuildInputs();
  const int reps = Reps(3);
  const std::vector<std::string> shown = {"OsdpLaplaceL1", "Suppress10",
                                          "Suppress100"};
  const double eps = 1.0;

  std::printf("=== Figure 10: PDP Suppress vs OSDP (regret of MRE, eps=1) ===\n\n");
  std::vector<std::pair<std::string, RegretFilter>> rows;
  rows.push_back({"Avg", RegretFilter{}});
  for (double rho : RatioGrid()) {
    RegretFilter f;
    f.rho = rho;
    rows.push_back({TextTable::Fmt(rho, 2), f});
  }
  PrintRegretTable(suite, inputs, rows, eps, ErrorMetric::kMRE, reps, shown);

  std::printf("\nexclusion-attack price (Theorem 3.4):\n");
  for (double tau : {10.0, 100.0}) {
    PrivacyGuarantee g = SuppressGuarantee(tau, "Phi_P");
    std::printf("  Suppress(tau=%.0f): %s -> %.0fx weaker protection than\n"
                "    OsdpLaplaceL1's phi = %.1f\n",
                tau, g.ToString().c_str(), tau / eps, eps);
  }
  std::printf("\nshape check: Suppress100 approaches OsdpLaplaceL1's utility\n"
              "but only by paying 100x in phi (paper Fig. 10).\n");
  return 0;
}
