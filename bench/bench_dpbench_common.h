// Shared driver for the DPBench-1D regret figures (Figures 6-10): builds the
// (x, x_ns) input grid — 7 datasets x {Close, Far} x ratio grid — and runs
// the mechanism suite with regret accounting.

#ifndef OSDP_BENCH_BENCH_DPBENCH_COMMON_H_
#define OSDP_BENCH_BENCH_DPBENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/benchdata/dpbench.h"
#include "src/benchdata/sampling.h"
#include "src/eval/regret.h"
#include "src/eval/table_printer.h"
#include "src/mech/histogram_mechanism.h"

namespace osdp {
namespace bench {

/// One evaluation input: a dataset with a sampled non-sensitive histogram.
struct DPBenchInput {
  std::string dataset;
  std::string policy;  // "Close" or "Far"
  double rho;
  Histogram x;
  Histogram xns;
};

/// The paper's non-sensitive ratio grid.
inline const std::vector<double>& RatioGrid() {
  static const std::vector<double> kGrid = {0.99, 0.90, 0.75, 0.50,
                                            0.25, 0.10, 0.01};
  return kGrid;
}

/// Builds all (dataset x policy x ratio) inputs — the paper's 98 pairs.
/// `min_rho` trims the grid (several figures restrict to ρx >= 0.25).
inline std::vector<DPBenchInput> BuildInputs(double min_rho = 0.0) {
  std::vector<DPBenchInput> inputs;
  Rng rng(20171216);
  for (const BenchmarkDataset& d : MakeDPBench1D()) {
    for (const char* policy : {"Close", "Far"}) {
      for (double rho : RatioGrid()) {
        if (rho < min_rho) continue;
        Histogram xns(0);
        if (std::string(policy) == "Close") {
          xns = *MSampling(d.hist, rho, MSamplingOptions{}, rng);
        } else {
          xns = *HiLoSampling(d.hist, rho, HiLoSamplingOptions{}, rng);
        }
        inputs.push_back(
            {d.name, policy, rho, d.hist, std::move(xns)});
      }
    }
  }
  return inputs;
}

/// Runs `suite` on every input matching the filter, aggregating average
/// regret per mechanism with `metric`. Filters accept empty = match all.
struct RegretFilter {
  std::string dataset;  // match-all when empty
  std::string policy;
  double rho = -1.0;  // match-all when negative
};

inline bool Matches(const RegretFilter& f, const DPBenchInput& in) {
  if (!f.dataset.empty() && f.dataset != in.dataset) return false;
  if (!f.policy.empty() && f.policy != in.policy) return false;
  if (f.rho >= 0.0 && std::abs(f.rho - in.rho) > 1e-9) return false;
  return true;
}

inline std::vector<MechanismScore> AverageRegret(
    const std::vector<std::unique_ptr<HistogramMechanism>>& suite,
    const std::vector<DPBenchInput>& inputs, const RegretFilter& filter,
    double epsilon, ErrorMetric metric, int reps) {
  RegretAccumulator acc;
  SuiteRunOptions opts;
  opts.repetitions = reps;
  uint64_t seed = 1;
  for (const DPBenchInput& in : inputs) {
    ++seed;
    if (!Matches(filter, in)) continue;
    opts.seed = seed * 7919;
    acc.Add(*RunSuite(suite, in.x, in.xns, epsilon, metric, opts));
  }
  return acc.AverageRegrets();
}

/// Renders a regret table: one row per row-filter, one column per mechanism.
inline void PrintRegretTable(
    const std::vector<std::unique_ptr<HistogramMechanism>>& suite,
    const std::vector<DPBenchInput>& inputs,
    const std::vector<std::pair<std::string, RegretFilter>>& rows,
    double epsilon, ErrorMetric metric, int reps,
    const std::vector<std::string>& shown_mechanisms) {
  std::vector<std::string> headers = {"input"};
  for (const std::string& m : shown_mechanisms) headers.push_back(m);
  TextTable table(headers);
  for (const auto& [label, filter] : rows) {
    auto scores = AverageRegret(suite, inputs, filter, epsilon, metric, reps);
    std::vector<std::string> cells = {label};
    for (const std::string& m : shown_mechanisms) {
      cells.push_back(TextTable::Fmt(ScoreOf(scores, m).regret, 2));
    }
    table.AddRow(std::move(cells));
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace bench
}  // namespace osdp

#endif  // OSDP_BENCH_BENCH_DPBENCH_COMMON_H_
