// GDPR-style end-to-end workflow (paper Example 1) through the high-level
// API: CSV in → policy written in the policy language → budgeted engine →
// CSV out, with the composed guarantee printed at the end.
//
// Build & run:  ./build/examples/gdpr_workflow

#include <cstdio>

#include "src/common/random.h"
#include "src/core/engine.h"
#include "src/data/csv.h"
#include "src/policy/parser.h"

using namespace osdp;  // example code; library code never does this

namespace {

// Synthesizes the "collected user data" a controller might hold.
std::string MakeUserCsv() {
  std::string csv = "age,country,consent\n";
  Rng rng(2018);  // the year GDPR took effect
  const char* countries[] = {"DE", "FR", "NL", "ES", "IT"};
  for (int i = 0; i < 8000; ++i) {
    const int age = 10 + static_cast<int>(rng.NextBounded(70));
    const char* country = countries[rng.NextBounded(5)];
    const int consent = rng.NextBernoulli(0.82) ? 1 : 0;
    csv += std::to_string(age);
    csv += ",";
    csv += country;
    csv += ",";
    csv += std::to_string(consent);
    csv += "\n";
  }
  return csv;
}

}  // namespace

int main() {
  // --- ingest -----------------------------------------------------------
  Table table = *ReadCsvTable(MakeUserCsv());
  std::printf("loaded %zu records with schema %s\n", table.num_rows(),
              table.schema().ToString().c_str());

  // --- policy, as a privacy officer would write it ------------------------
  // GDPR: minors under 16 need parental authorization; no consent = no use.
  Policy policy = *ParsePolicy("age < 16 OR consent = 0", "P_gdpr");
  std::printf("policy: %s\n", policy.sensitive_predicate().ToString().c_str());

  // --- budgeted engine ----------------------------------------------------
  OsdpEngine::Options opts;
  opts.total_epsilon = 2.0;
  OsdpEngine engine = *OsdpEngine::Create(std::move(table), policy, opts);
  std::printf("engine ready: budget eps = %.2f\n\n", opts.total_epsilon);

  // 1. A true microdata sample for the analytics team.
  Table sample = *engine.ReleaseSample(0.5);
  std::printf("released %zu true records (OsdpRR, eps=0.5)\n",
              sample.num_rows());
  const std::string out_path = "/tmp/osdp_gdpr_sample.csv";
  if (WriteStringToFile(out_path, WriteCsvTable(sample)).ok()) {
    std::printf("  sample written to %s\n", out_path.c_str());
  }

  // 2. An age histogram for the marketing dashboard.
  HistogramQuery age_query{"age", *Domain1D::Numeric(10, 80, 14), std::nullopt};
  Histogram ages = *engine.AnswerHistogram(age_query, 1.0,
                                           EngineMechanism::kDawaz);
  std::printf("age histogram (DAWAz, eps=1.0): first bins = %s\n",
              ages.ToString().c_str());

  // 3. One ad-hoc count.
  double minors_opted_in =
      *engine.AnswerCount(*ParsePredicate("age >= 16 AND age < 30"), 0.5);
  std::printf("noisy count of consenting 16-29s: %.1f\n", minors_opted_in);

  // --- the final accounting ----------------------------------------------
  ComposedGuarantee g = *engine.CurrentGuarantee();
  std::printf("\nafter all releases: (%s, %.2f)-OSDP; remaining budget %.2f\n",
              g.policy.name().c_str(), g.epsilon, engine.remaining_budget());

  // A fourth query must fail: the budget is spent.
  auto refused = engine.AnswerCount(*ParsePredicate("TRUE"), 0.5);
  std::printf("one more query? %s\n", refused.status().ToString().c_str());
  return 0;
}
