// Streaming ingest: serving OSDP queries while the dataset grows.
//
//   1. Stand up a QueryService over a seed dataset (generation 0).
//   2. Analysts query; each answer is tagged with the snapshot generation
//      it was computed against.
//   3. A writer ingests row batches; each batch becomes a new immutable
//      generation, published atomically — queries in flight keep the
//      snapshot they captured, later queries see the new rows.
//   4. The ledger records the generation every ε was charged against, so
//      the audit trail names the exact sensitive/non-sensitive split of
//      each release.
//
// Build & run:  ./build/examples/streaming_ingest

#include <cstdio>

#include "src/benchdata/table_gen.h"
#include "src/core/engine.h"
#include "src/data/predicate.h"
#include "src/policy/policy.h"
#include "src/runtime/query_service.h"

using namespace osdp;  // example code; library code never does this

int main() {
  // --- 1. Seed dataset + policy + service -------------------------------
  // Census-style rows; opted-out users and minors are sensitive.
  CensusTableOptions seed_opts;
  seed_opts.num_rows = 20000;
  const Policy policy = Policy::SensitiveWhen(
      Predicate::Or(Predicate::Eq("opt_in", Value(0)),
                    Predicate::Lt("age", Value(18))),
      "opt_out_or_minor");
  OsdpEngine::Options eopts;
  eopts.total_epsilon = 2.0;
  auto engine = *OsdpEngine::Create(MakeCensusTable(seed_opts), policy, eopts);

  QueryService::Options sopts;
  sopts.per_session_epsilon = 1.0;
  auto service = *QueryService::Create(std::move(engine), sopts);
  const auto alice = service->OpenSession("alice");
  std::printf("generation %llu: %zu rows\n",
              static_cast<unsigned long long>(service->current_generation()),
              service->num_rows());

  // --- 2. Query the seed generation -------------------------------------
  const Predicate adults = Predicate::Ge("age", Value(30));
  auto before = *service->AnswerCount(alice, adults, 0.1);
  std::printf("count(age >= 30) = %.1f  (generation %llu)\n", before.count,
              static_cast<unsigned long long>(before.generation));

  // --- 3. Ingest: each batch is a new immutable generation ---------------
  for (int day = 1; day <= 3; ++day) {
    CensusTableOptions batch_opts;
    batch_opts.num_rows = 5000;
    batch_opts.seed = 0xDA7A + day;
    const uint64_t generation =
        *service->Ingest(MakeCensusTable(batch_opts));
    std::printf("ingested day-%d batch -> generation %llu, %zu rows\n", day,
                static_cast<unsigned long long>(generation),
                service->num_rows());
  }

  // --- 4. Same query, new generation; audit trail names both ------------
  auto after = *service->AnswerCount(alice, adults, 0.1);
  std::printf("count(age >= 30) = %.1f  (generation %llu)\n", after.count,
              static_cast<unsigned long long>(after.generation));

  for (const auto& entry : service->ledger().entries()) {
    std::printf("ledger: eps=%.2f generation=%llu  %s\n", entry.epsilon,
                static_cast<unsigned long long>(entry.generation),
                entry.label.c_str());
  }
  const auto guarantee = *service->CurrentGuarantee();
  std::printf("composed guarantee: (%s, %.2f)-OSDP\n",
              guarantee.policy.name().c_str(), guarantee.epsilon);
  return 0;
}
