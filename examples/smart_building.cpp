// Smart-building scenario (paper Example 3 + Section 6.1.1): a TIPPERS-like
// deployment where the smoker's lounge is a sensitive location.
//
//   * shows why Truman / non-Truman access control leaks Bob's location;
//   * releases true daily trajectories with OsdpRR under an AP-level policy;
//   * publishes 4-gram mobility statistics, comparing OsdpRR against the
//     truncated-Laplace DP baseline (the Figure 2 pipeline).
//
// Build & run:  ./build/examples/smart_building

#include <cmath>
#include <cstdio>

#include "src/accesscontrol/access_control.h"
#include "src/attack/exclusion.h"
#include "src/eval/metrics.h"
#include "src/mech/osdp_rr.h"
#include "src/traj/ap_policy.h"
#include "src/traj/building_sim.h"
#include "src/traj/ngram.h"

using namespace osdp;  // example code; library code never does this

int main() {
  // --- The exclusion attack on access control ---------------------------
  // A 4-value location domain; value 0 is the smoker's lounge (sensitive).
  std::vector<bool> sensitive = {true, false, false, false};
  std::printf("=== locate-Bob leakage (Section 1 / 3.2) ===\n");
  for (const SingleRecordMechanism& m :
       {MakeTrumanModel(sensitive), MakeNonTrumanModel(sensitive),
        MakeOsdpRRModel(sensitive, /*epsilon=*/1.0)}) {
    const double phi = *ExclusionAttackPhi(m);
    if (std::isinf(phi)) {
      std::printf("  %-10s phi = unbounded (attack succeeds)\n",
                  m.name.c_str());
    } else {
      std::printf("  %-10s phi = %.3f\n", m.name.c_str(), phi);
    }
  }

  // --- Simulated building ----------------------------------------------
  BuildingSimConfig cfg;
  cfg.num_users = 600;
  cfg.num_days = 40;
  cfg.seed = 11;
  TrajectoryDataset sim = *SimulateBuilding(cfg);
  std::printf("\nsimulated %zu daily trajectories from %d users, %d APs\n",
              sim.trajectories.size(), cfg.num_users, cfg.num_aps);

  // Policy: sensitive APs calibrated so ~90%% of trajectories stay clean.
  ApSetPolicy ap_policy =
      *CalibrateApPolicy(sim.trajectories, cfg.num_aps, 0.90);
  auto policy = ap_policy.AsPolicy("P90");
  std::printf("policy P90: achieved non-sensitive fraction %.3f\n",
              ap_policy.NonSensitiveFraction(sim.trajectories));

  // --- OsdpRR trajectory release ----------------------------------------
  Rng rng(4);
  const double eps = 1.0;
  std::vector<size_t> released =
      OsdpRRSelectGeneric(sim.trajectories, policy, eps, rng);
  std::printf("OsdpRR(eps=%.1f) released %zu true trajectories\n", eps,
              released.size());
  std::vector<Trajectory> sample;
  sample.reserve(released.size());
  for (size_t i : released) sample.push_back(sim.trajectories[i]);

  // --- 4-gram mobility statistics ----------------------------------------
  NGramOptions nopts;
  nopts.n = 4;
  nopts.alphabet = cfg.num_aps;
  SparseHistogram truth = *NGramDistinctUsers(sim.trajectories, nopts);
  SparseHistogram rr_est = *NGramDistinctUsers(sample, nopts);
  const double rr_mre = SparseMeanRelativeError(truth, rr_est, 0.0);

  SparseHistogram trunc =
      *TruncatedNGramDistinctUsers(sim.trajectories, nopts, /*k=*/1, rng);
  SparseHistogram lm = *NGramLaplace(trunc, 1, eps, rng);
  const double lm_mre =
      SparseMeanRelativeError(truth, lm, NGramLaplaceZeroCellError(1, eps));

  std::printf("\n=== 4-gram release (domain 64^4 = 16.8M cells) ===\n");
  std::printf("  true n-grams with mass: %zu\n", truth.num_materialized());
  std::printf("  OsdpRR   MRE = %.4g   (true data, exact zeros)\n", rr_mre);
  std::printf("  LM T1    MRE = %.4g   (truncation + Laplace everywhere)\n",
              lm_mre);
  std::printf("  OsdpRR is %.1fx more accurate\n", lm_mre / rr_mre);
  return 0;
}
