// Quickstart: the one-sided differential privacy workflow in ~80 lines.
//
//   1. Build a table and declare a policy (who is sensitive).
//   2. Release a *true* sample of non-sensitive records with OsdpRR.
//   3. Answer a histogram query with one-sided Laplace noise.
//   4. Track the composed guarantee with the accounting ledger.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/accounting/composition.h"
#include "src/common/random.h"
#include "src/hist/histogram_query.h"
#include "src/mech/osdp_laplace.h"
#include "src/mech/osdp_rr.h"
#include "src/policy/policy.h"

using namespace osdp;  // example code; library code never does this

int main() {
  // --- 1. Data + policy -----------------------------------------------
  // GDPR-style scenario: users either opted in (1) or not (0); opted-out
  // records and minors are sensitive.
  Table table(Schema({{"age", ValueType::kInt64},
                      {"opt_in", ValueType::kInt64}}));
  Rng data_rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto age = static_cast<int64_t>(data_rng.NextBounded(90) + 10);
    const auto opt = static_cast<int64_t>(data_rng.NextBernoulli(0.85) ? 1 : 0);
    if (!table.AppendRow({Value(age), Value(opt)}).ok()) return 1;
  }
  Policy policy = Policy::SensitiveWhen(
      Predicate::Or(Predicate::Le("age", Value(17)),
                    Predicate::Eq("opt_in", Value(0))),
      "P_gdpr");
  std::printf("policy %s: %.1f%% of records are non-sensitive\n",
              policy.name().c_str(), 100 * policy.NonSensitiveFraction(table));

  // --- 2. OsdpRR: release true records ---------------------------------
  Rng rng(42);
  const double eps_release = 0.5;
  Table sample = *OsdpRRRelease(table, policy, eps_release, rng);
  std::printf("OsdpRR(eps=%.2f) released %zu of %zu records "
              "(expected rate %.1f%% of non-sensitive)\n",
              eps_release, sample.num_rows(), table.num_rows(),
              100 * OsdpRRReleaseProbability(eps_release));

  // --- 3. OsdpLaplaceL1: histogram with one-sided noise -----------------
  const double eps_hist = 0.5;
  HistogramQuery query{"age", *Domain1D::Numeric(10, 100, 18), std::nullopt};
  Histogram x = *ComputeHistogram(table, query);
  Histogram xns = *ComputeHistogramMasked(table, query,
                                          policy.NonSensitiveMask(table));
  Histogram noisy = *OsdpLaplaceL1(xns, eps_hist, rng);
  std::printf("\nage histogram (true vs OSDP estimate):\n");
  for (size_t b = 0; b < x.size(); ++b) {
    auto [lo, hi] = query.domain.BinBounds(b);
    std::printf("  [%3.0f,%3.0f)  true %6.0f   estimate %8.1f\n", lo, hi, x[b],
                noisy[b]);
  }

  // --- 4. Accounting ----------------------------------------------------
  CompositionLedger ledger;
  ledger.Record(policy, eps_release, "OsdpRR sample");
  ledger.Record(policy, eps_hist, "OsdpLaplaceL1 histogram");
  ComposedGuarantee g = *ledger.Sequential();
  std::printf("\ncomposed guarantee: (%s, %.2f)-OSDP  (Theorem 3.3)\n",
              g.policy.name().c_str(), g.epsilon);
  std::printf("exclusion-attack freedom: phi = %.2f  (Theorem 3.1)\n",
              g.epsilon);
  return 0;
}
