// Opt-in analytics (paper Examples 1-2 + Section 6.3.3): a data owner whose
// users opted in/out runs the full histogram-release suite on a benchmark
// dataset under Close and Far policies, and reads off the regret table.
//
// Build & run:  ./build/examples/opt_in_analytics

#include <cstdio>

#include "src/benchdata/dpbench.h"
#include "src/benchdata/sampling.h"
#include "src/eval/regret.h"
#include "src/eval/table_printer.h"
#include "src/mech/histogram_mechanism.h"

using namespace osdp;  // example code; library code never does this

int main() {
  BenchmarkDataset dataset = *MakeDPBenchDataset("Adult", 4096, 20200416);
  std::printf("dataset %s: %zu bins, scale %.0f, sparsity %.3f\n",
              dataset.name.c_str(), dataset.hist.size(), dataset.hist.Total(),
              dataset.hist.Sparsity());

  const double eps = 1.0;
  const double rho = 0.9;  // 90% of users opted in
  Rng rng(1);

  auto suite = StandardSuite();
  SuiteRunOptions opts;
  opts.repetitions = 5;
  opts.seed = 7;

  for (const char* policy_name : {"Close", "Far"}) {
    Histogram xns(0);
    if (std::string(policy_name) == "Close") {
      xns = *MSampling(dataset.hist, rho, MSamplingOptions{}, rng);
    } else {
      xns = *HiLoSampling(dataset.hist, rho, HiLoSamplingOptions{}, rng);
    }
    auto scores =
        *RunSuite(suite, dataset.hist, xns, eps, ErrorMetric::kMRE, opts);

    std::printf("\n=== policy %s (rho=%.2f, eps=%.1f) ===\n", policy_name, rho,
                eps);
    TextTable table({"algorithm", "guarantee", "MRE", "regret"});
    for (const MechanismScore& s : scores) {
      PrivacyGuarantee g;
      for (const auto& mech : suite) {
        if (mech->name() == s.name) g = mech->Guarantee(eps);
      }
      table.AddRow({s.name, g.ToString(), TextTable::FmtAuto(s.error),
                    TextTable::Fmt(s.regret, 2)});
    }
    std::printf("%s", table.ToString().c_str());
  }

  std::printf(
      "\nreading: the OSDP algorithms exploit the opted-in majority; the\n"
      "Far policy hurts the pure x_ns-based primitives but DAWAz (which also\n"
      "sees the full histogram through its DP stage) stays competitive.\n");
  return 0;
}
