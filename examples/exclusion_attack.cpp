// Exclusion-attack walkthrough (Section 3.2): exactly how much an adversary
// learns about whether Bob's record is sensitive, mechanism by mechanism.
//
// Build & run:  ./build/examples/exclusion_attack

#include <cmath>
#include <cstdio>

#include "src/attack/exclusion.h"
#include "src/eval/table_printer.h"

using namespace osdp;  // example code; library code never does this

namespace {

std::string PhiString(double phi) {
  if (std::isinf(phi)) return "unbounded";
  return TextTable::Fmt(phi, 3);
}

}  // namespace

int main() {
  // Bob's location takes one of 5 values; value 0 (smoker's lounge) is the
  // sensitive one. The adversary starts with a uniform prior.
  std::vector<bool> sensitive = {true, false, false, false, false};
  const std::vector<double> prior(5, 0.2);
  const double eps = 1.0;

  std::vector<SingleRecordMechanism> mechanisms = {
      MakeTrumanModel(sensitive),
      MakeNonTrumanModel(sensitive),
      MakeOsdpRRModel(sensitive, eps),
      MakeKRandomizedResponseModel(sensitive, eps),
  };

  std::printf("=== worst-case exclusion-attack exponent (Definition 3.4) ===\n");
  TextTable phi_table({"mechanism", "phi", "posterior odds factor e^phi"});
  for (const auto& m : mechanisms) {
    const double phi = *ExclusionAttackPhi(m);
    phi_table.AddRow({m.name, PhiString(phi),
                      std::isinf(phi) ? "unbounded" : TextTable::Fmt(std::exp(phi), 3)});
  }
  std::printf("%s", phi_table.ToString().c_str());

  // The concrete attack: the adversary observes "no answer" (output ∅).
  std::printf("\n=== adversary observes suppression; odds(lounge : office) ===\n");
  std::printf("prior odds = 1.0 (uniform prior)\n");
  for (const auto& m : mechanisms) {
    // Skip kRR: it never suppresses (that is exactly its strength).
    if (m.name == "kRR") {
      std::printf("  %-10s never suppresses; no exclusion signal exists\n",
                  m.name.c_str());
      continue;
    }
    // The "no answer" output: REJECT for non-Truman, ∅ otherwise.
    const size_t no_answer =
        m.output_names.back() == "REJECT" ? m.output_names.size() - 1 : 5;
    auto odds = PosteriorOddsRatio(m, prior, /*x=*/0, /*y=*/1, no_answer);
    if (!odds.ok()) {
      std::printf("  %-10s (%s)\n", m.name.c_str(),
                  odds.status().ToString().c_str());
      continue;
    }
    if (std::isinf(*odds)) {
      std::printf("  %-10s posterior odds = unbounded -> Bob is CERTAINLY at "
                  "a sensitive location\n",
                  m.name.c_str());
    } else {
      std::printf("  %-10s posterior odds = %.3f (bounded by e^eps = %.3f)\n",
                  m.name.c_str(), *odds, std::exp(eps));
    }
  }

  // PDP Suppress: its phi equals its threshold tau (Theorem 3.4).
  std::printf("\n=== PDP Suppress(tau): utility bought with leakage ===\n");
  for (double tau : {10.0, 50.0, 100.0}) {
    std::printf("  Suppress(tau=%5.1f): phi = %.1f  -> %.0fx weaker than an "
                "eps=1 OSDP mechanism\n",
                tau, tau, tau / eps);
  }
  return 0;
}
